package lu

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/matgen"
	"tcqr/internal/tcsim"
)

func randSquare(seed int64, n int) (*dense.M64, *dense.M32) {
	rng := rand.New(rand.NewSource(seed))
	a64 := matgen.Normal(rng, n, n)
	// Diagonal dominance keeps the tests' systems comfortably nonsingular.
	for i := 0; i < n; i++ {
		a64.Set(i, i, a64.At(i, i)+float64(n)/4)
	}
	return a64, dense.ToF32(a64)
}

// reconstruct forms P⁻¹·L·U and compares to A.
func reconstructError(f *Factorization, a *dense.M32) float64 {
	n := a.Rows
	l := dense.New[float64](n, n)
	u := dense.New[float64](n, n)
	for j := 0; j < n; j++ {
		col := f.LU.Col(j)
		u.Set(j, j, float64(col[j]))
		for i := 0; i < j; i++ {
			u.Set(i, j, float64(col[i]))
		}
		l.Set(j, j, 1)
		for i := j + 1; i < n; i++ {
			l.Set(i, j, float64(col[i]))
		}
	}
	pa := dense.New[float64](n, n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, l, u, 0, pa)
	// Undo the permutation: rows were swapped forward; apply inverse in
	// reverse order to recover A ordering.
	for k := n - 1; k >= 0; k-- {
		if p := f.Pivots[k]; p != k {
			for c := 0; c < n; c++ {
				col := pa.Col(c)
				col[k], col[p] = col[p], col[k]
			}
		}
	}
	a64 := dense.ToF64(a)
	var num float64
	for i := range pa.Data {
		d := pa.Data[i] - a64.Data[i]
		num += d * d
	}
	return math.Sqrt(num) / dense.NormFro(a64)
}

func TestFactorReconstruction(t *testing.T) {
	for _, n := range []int{1, 2, 7, 33, 96, 130} {
		_, a := randSquare(int64(n), n)
		f, err := Factor(a, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e := reconstructError(f, a); e > 1e-5 {
			t.Errorf("n=%d: reconstruction error %g", n, e)
		}
	}
}

func TestPartialPivoting(t *testing.T) {
	// A matrix needing a swap at the first step: |a₁₀| > |a₀₀|.
	a := dense.New[float32](2, 2)
	a.Set(0, 0, 1e-8)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	f, err := Factor(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Pivots[0] != 1 {
		t.Errorf("pivot[0] = %d, want 1", f.Pivots[0])
	}
	// All multipliers bounded by 1 under partial pivoting.
	n := f.LU.Rows
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			if abs32(f.LU.At(i, j)) > 1+1e-6 {
				t.Errorf("multiplier (%d,%d) = %v exceeds 1", i, j, f.LU.At(i, j))
			}
		}
	}
}

func TestSolve(t *testing.T) {
	a64, a := randSquare(3, 64)
	rng := rand.New(rand.NewSource(4))
	xTrue := make([]float64, 64)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 64)
	blas.Gemv(blas.NoTrans, 1, a64, xTrue, 0, b)
	b32 := make([]float32, 64)
	for i, v := range b {
		b32[i] = float32(v)
	}
	f, err := Factor(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Solve(b32)
	for i := range xTrue {
		if math.Abs(float64(b32[i])-xTrue[i]) > 1e-3 {
			t.Fatalf("x[%d] = %v, want %v", i, b32[i], xTrue[i])
		}
	}
}

func TestSingularDetection(t *testing.T) {
	a := dense.New[float32](3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1) // column 2 entirely zero
	_, err := Factor(a, Options{})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := Factor(dense.New[float32](2, 3), Options{}); err == nil {
		t.Fatal("non-square input must be rejected")
	}
}

func TestSolveRefinedReachesDouble(t *testing.T) {
	a64, a := randSquare(5, 128)
	rng := rand.New(rand.NewSource(6))
	xTrue := make([]float64, 128)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, 128)
	blas.Gemv(blas.NoTrans, 1, a64, xTrue, 0, b)

	// TensorCore trailing updates — the related-work configuration.
	f, err := Factor(a, Options{Engine: &tcsim.TensorCore{}})
	if err != nil {
		t.Fatal(err)
	}
	res := SolveRefined(f, a64, b, 1e-12, 0)
	if !res.Converged {
		t.Fatalf("refinement did not converge: residuals %v", res.ResidualNorms)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("x[%d] off by %g", i, math.Abs(res.X[i]-xTrue[i]))
		}
	}
	// The TC factorization alone is far less accurate: the first residual
	// (from the unrefined x₀ = 0 baseline) shrinks by many orders.
	if res.Iterations < 1 {
		t.Error("expected at least one refinement step")
	}
}

// TestGrowthOverflowsHalfPrecision makes the §3.5 footnote executable:
// Gaussian elimination on the Wilkinson matrix (entries in {-1, 0, 1})
// grows like 2^(n-1); at n > 17 the intermediate values exceed 65504, so
// the TensorCore trailing update overflows even though every INPUT element
// is ±1 — something that cannot happen to the column-scaled QR, whose
// intermediates are bounded by the (preserved) column norms.
func TestGrowthOverflowsHalfPrecision(t *testing.T) {
	n := 96
	a := dense.New[float32](n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		a.Set(i, n-1, 1)
		for j := 0; j < i; j++ {
			a.Set(i, j, -1)
		}
	}
	// FP32 engine: factors fine, growth ≈ 2^(n-1) (inf at n=96 in f32
	// after ~2^127... n=96 keeps 2^95 within float32 range).
	f32eng, err := Factor(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	growth := f32eng.GrowthFactor(a)
	if growth < math.Exp2(90) {
		t.Errorf("expected ~2^95 growth, got %g", growth)
	}

	// TensorCore engine: the trailing update rounds intermediates through
	// binary16 and overflows once they pass 65504.
	eng := &tcsim.TensorCore{TrackSpecials: true}
	fTC, err := Factor(a, Options{Engine: eng, BlockSize: 16})
	if err == nil {
		// Either the factorization fails on a NaN pivot or the result is
		// poisoned — both demonstrate the hazard.
		if !fTC.LU.HasNaN() && eng.Stats().Overflows == 0 {
			t.Error("expected fp16 overflow during TC-LU of the growth matrix")
		}
	}
	if eng.Stats().Overflows == 0 {
		t.Error("no overflow events recorded")
	}
}

func TestGrowthFactorBookkeeping(t *testing.T) {
	_, a := randSquare(7, 32)
	f, err := Factor(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := f.GrowthFactor(a)
	// Random diagonally dominant matrices have modest growth.
	if g < 0.1 || g > 100 {
		t.Errorf("growth factor %g implausible", g)
	}
	if (&Factorization{LU: dense.New[float32](2, 2), Pivots: []int{0, 1}}).GrowthFactor(dense.New[float32](2, 2)) != 0 {
		t.Error("zero matrix growth should be 0")
	}
}
