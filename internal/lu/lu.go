// Package lu implements blocked LU factorization with partial pivoting and
// a mixed-precision linear solver, the paper's closest related work
// (Haidar et al. [21-23]: TensorCore-accelerated LU with iterative
// refinement). It exists for two reasons:
//
//  1. as the comparison point the paper positions itself against — same
//     compensate-low-precision-with-refinement idea, LU instead of QR,
//     linear systems instead of least squares;
//  2. to make the §3.5 footnote executable: QR's column scaling bounds
//     every intermediate quantity (orthogonal transformations preserve
//     column norms), whereas "LU factorization does not guarantee this" —
//     Gaussian elimination has a growth factor up to 2^(n-1), so an LU run
//     on a half-precision engine can overflow mid-factorization even when
//     every input element is ±1.
//
// The trailing-matrix update (where the flops are) runs through a
// tcsim.Engine, so LU gets the same TensorCore treatment as the QR.
package lu

import (
	"errors"
	"fmt"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/tcsim"
)

// DefaultBlockSize is the panel width of the blocked factorization.
const DefaultBlockSize = 32

// ErrSingular is returned when a pivot column is exactly zero (or has been
// poisoned into NaN by engine overflow).
var ErrSingular = errors.New("lu: matrix is singular to working precision")

// Factorization holds P·A = L·U in LAPACK layout: L (unit lower) and U
// share the factored matrix; Pivots[k] is the row swapped with row k at
// step k.
type Factorization struct {
	LU     *dense.M32
	Pivots []int
}

// Options configures the factorization.
type Options struct {
	// Engine runs the trailing-matrix GEMM updates; nil selects plain FP32
	// (set a *tcsim.TensorCore for the related-work configuration).
	Engine tcsim.Engine
	// BlockSize is the panel width; <= 0 selects DefaultBlockSize.
	BlockSize int
}

func (o *Options) engine() tcsim.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return defaultFP32
}

var defaultFP32 = &tcsim.FP32{}

func (o *Options) nb() int {
	if o.BlockSize > 0 {
		return o.BlockSize
	}
	return DefaultBlockSize
}

// Factor computes P·A = L·U with partial pivoting on a copy of the square
// matrix a.
func Factor(a *dense.M32, opts Options) (*Factorization, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("lu: matrix is %dx%d; need square", a.Rows, a.Cols)
	}
	w := a.Clone()
	piv := make([]int, n)
	nb := opts.nb()
	eng := opts.engine()

	for j := 0; j < n; j += nb {
		jb := min(nb, n-j)
		// Panel factorization (unblocked, with pivot search over the whole
		// remaining column height).
		if err := getf2(w, j, jb, piv); err != nil {
			return nil, err
		}
		if j+jb >= n {
			break
		}
		// Apply the panel's row interchanges to the left and right of it.
		laswpRange(w, j, j+jb, piv, 0, j)
		laswpRange(w, j, j+jb, piv, j+jb, n)
		// U12 = L11⁻¹·A12 (unit lower triangular solve).
		l11 := w.View(j, j, jb, jb)
		a12 := w.View(j, j+jb, jb, n-j-jb)
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l11, a12)
		// Trailing update A22 ← A22 − L21·U12 — the engine GEMM.
		l21 := w.View(j+jb, j, n-j-jb, jb)
		a22 := w.View(j+jb, j+jb, n-j-jb, n-j-jb)
		eng.Gemm(blas.NoTrans, blas.NoTrans, -1, l21, a12, 1, a22)
	}
	return &Factorization{LU: w, Pivots: piv}, nil
}

// getf2 factors the panel w[j:n, j:j+jb] in place, recording pivots.
func getf2(w *dense.M32, j, jb int, piv []int) error {
	n := w.Rows
	for k := j; k < j+jb; k++ {
		// Pivot search in column k below the diagonal.
		col := w.Col(k)
		p, best := k, abs32(col[k])
		for i := k + 1; i < n; i++ {
			if a := abs32(col[i]); a > best {
				p, best = i, a
			}
		}
		piv[k] = p
		if best == 0 || best != best { // zero or NaN
			return fmt.Errorf("%w (column %d)", ErrSingular, k)
		}
		if p != k {
			swapRows(w, k, p, j, j+jb)
		}
		pivVal := col[k]
		// Scale the multipliers and update the rest of the panel.
		blas.Scal(1/pivVal, col[k+1:n])
		for c := k + 1; c < j+jb; c++ {
			blas.Axpy(-w.At(k, c), col[k+1:n], w.Col(c)[k+1:n])
		}
	}
	return nil
}

// laswpRange applies the interchanges recorded for rows [k0, k1) to the
// column range [c0, c1).
func laswpRange(w *dense.M32, k0, k1 int, piv []int, c0, c1 int) {
	for k := k0; k < k1; k++ {
		if piv[k] != k {
			swapRows(w, k, piv[k], c0, c1)
		}
	}
}

func swapRows(w *dense.M32, r1, r2, c0, c1 int) {
	for c := c0; c < c1; c++ {
		col := w.Col(c)
		col[r1], col[r2] = col[r2], col[r1]
	}
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// Solve overwrites x (initially b) with A⁻¹·b using the factorization:
// apply P, then the two triangular solves.
func (f *Factorization) Solve(x []float32) {
	n := f.LU.Rows
	if len(x) != n {
		panic(fmt.Sprintf("lu: rhs length %d, want %d", len(x), n))
	}
	for k := 0; k < n; k++ {
		if p := f.Pivots[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	blas.Trsv(blas.Lower, blas.NoTrans, blas.Unit, f.LU, x)
	blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, f.LU, x)
}

// GrowthFactor returns max|U| / max|A|, the elimination growth that §3.5
// warns makes LU unsafe on limited-range formats: even with every input
// element in [-1, 1], growth can reach 2^(n-1) and overflow binary16.
func (f *Factorization) GrowthFactor(a *dense.M32) float64 {
	maxU := 0.0
	n := f.LU.Rows
	for jc := 0; jc < n; jc++ {
		col := f.LU.Col(jc)
		for i := 0; i <= jc; i++ {
			if v := float64(abs32(col[i])); v > maxU {
				maxU = v
			}
		}
	}
	maxA := dense.NormMax(a)
	if maxA == 0 {
		return 0
	}
	return maxU / maxA
}
