package lu

import (
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/tcsim"
)

func BenchmarkFactor(b *testing.B) {
	_, a := randSquare(1, 256)
	for _, c := range []struct {
		name string
		opts Options
	}{
		{"FP32", Options{}},
		{"TC", Options{Engine: &tcsim.TensorCore{}}},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.SetBytes(2 * 256 * 256 * 256 / 3)
			for i := 0; i < b.N; i++ {
				if _, err := Factor(a, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolveRefined(b *testing.B) {
	a64, a := randSquare(2, 256)
	xTrue := make([]float64, 256)
	for i := range xTrue {
		xTrue[i] = float64(i%7) - 3
	}
	rhs := make([]float64, 256)
	blas.Gemv(blas.NoTrans, 1, a64, xTrue, 0, rhs)
	f, err := Factor(a, Options{Engine: &tcsim.TensorCore{}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := SolveRefined(f, a64, rhs, 1e-12, 0)
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}
