package lu

import (
	"fmt"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// IterativeResult reports a mixed-precision solve.
type IterativeResult struct {
	X          []float64
	Iterations int
	Converged  bool
	// ResidualNorms[k] is ‖b − A·x_k‖ after k refinement steps.
	ResidualNorms []float64
}

// SolveRefined solves the square system A·x = b to (near) double precision
// using a low-precision LU factorization plus classical iterative
// refinement — the Haidar et al. recipe the paper cites as the closest
// related work. The factorization f must come from Factor on (a narrowing
// of) a; residuals are computed in float64; corrections are solved with
// the float32 factors. Convergence requires κ(A)·ε_effective ≲ 1, where
// ε_effective is the half precision of the engine used in the trailing
// updates.
func SolveRefined(f *Factorization, a *dense.M64, b []float64, tol float64, maxIter int) *IterativeResult {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic(fmt.Sprintf("lu: SolveRefined shapes A=%dx%d b=%d", a.Rows, a.Cols, len(b)))
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	x := make([]float64, n)
	r := make([]float64, n)
	r32 := make([]float32, n)
	out := &IterativeResult{X: x}
	bNorm := blas.Nrm2(b)
	if bNorm == 0 {
		out.Converged = true
		return out
	}
	best := append([]float64(nil), x...)
	bestNorm := bNorm
	for k := 0; k <= maxIter; k++ {
		copy(r, b)
		blas.Gemv(blas.NoTrans, -1, a, x, 1, r) // r = b − A·x in float64
		rn := blas.Nrm2(r)
		out.ResidualNorms = append(out.ResidualNorms, rn)
		if rn < bestNorm {
			bestNorm = rn
			copy(best, x)
		}
		if rn <= tol*bNorm {
			out.Converged = true
			return out
		}
		if k == maxIter || rn != rn /* NaN */ || rn > 100*bestNorm {
			break
		}
		for i, v := range r {
			r32[i] = float32(v)
		}
		f.Solve(r32)
		for i := range x {
			x[i] += float64(r32[i])
		}
		out.Iterations = k + 1
	}
	copy(x, best)
	return out
}
