// Package svd provides the singular value decomposition substrate for the
// paper's optimal low-rank approximation application (Section 3.4 and
// Table 4): a one-sided Jacobi SVD for the small square R factor, and the
// QR-SVD driver A = Q·R, R = U·Σ·Vᵀ ⇒ A = (Q·U)·Σ·Vᵀ, with truncation to
// rank r. For a tall-skinny A the QR dominates the cost, which is exactly
// why the paper accelerates it with RGSQRF; the truncation error then
// dwarfs the half-precision roundoff, so no refinement is needed.
package svd

import (
	"fmt"
	"math"
	"sort"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// MaxSweeps bounds the number of Jacobi sweeps; one-sided Jacobi on
// realistic matrices converges in well under 30 sweeps.
const MaxSweeps = 30

// Result is a thin SVD A = U·diag(S)·Vᵀ with S sorted in descending order.
type Result[T dense.Float] struct {
	U *dense.Matrix[T] // m×n, orthonormal columns
	S []T              // n singular values, descending
	V *dense.Matrix[T] // n×n orthogonal
}

// Jacobi computes the thin SVD of a (m×n, m >= n) by the one-sided Jacobi
// method: columns of a working copy of A are orthogonalized by Givens
// rotations accumulated into V; on convergence the column norms are the
// singular values. tol <= 0 selects a precision-appropriate default.
func Jacobi[T dense.Float](a *dense.Matrix[T], tol float64) (*Result[T], error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("svd: Jacobi requires m >= n, got %dx%d", m, n)
	}
	if tol <= 0 {
		var t T
		switch any(t).(type) {
		case float32:
			tol = 1e-7
		default:
			tol = 1e-14
		}
	}
	u := a.Clone()
	v := dense.New[T](n, n)
	v.SetIdentity()

	converged := false
	for sweep := 0; sweep < MaxSweeps && !converged; sweep++ {
		converged = true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				up, uq := u.Col(p), u.Col(q)
				var alpha, beta, gamma float64
				for i := range up {
					x, y := float64(up[i]), float64(uq[i])
					alpha += x * x
					beta += y * y
					gamma += x * y
				}
				if alpha == 0 || beta == 0 {
					continue
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) {
					continue
				}
				converged = false
				// Two-sided rotation annihilating the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotate(up, uq, T(c), T(s))
				rotate(v.Col(p), v.Col(q), T(c), T(s))
			}
		}
	}
	if !converged {
		return nil, fmt.Errorf("svd: Jacobi did not converge in %d sweeps", MaxSweeps)
	}

	// Column norms are the singular values; normalize U.
	sv := make([]T, n)
	for j := 0; j < n; j++ {
		col := u.Col(j)
		nrm := blas.Nrm2(col)
		sv[j] = nrm
		if nrm > 0 {
			blas.Scal(1/nrm, col)
		}
	}

	// Sort descending, permuting U and V consistently.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool { return sv[perm[i]] > sv[perm[j]] })
	res := &Result[T]{U: dense.New[T](m, n), S: make([]T, n), V: dense.New[T](n, n)}
	for j, pj := range perm {
		res.S[j] = sv[pj]
		copy(res.U.Col(j), u.Col(pj))
		copy(res.V.Col(j), v.Col(pj))
	}
	return res, nil
}

// rotate applies the Givens rotation [c -s; s c] to the column pair (x, y):
// x' = c·x − s·y, y' = s·x + c·y.
func rotate[T dense.Float](x, y []T, c, s T) {
	for i := range x {
		xi, yi := x[i], y[i]
		x[i] = c*xi - s*yi
		y[i] = s*xi + c*yi
	}
}

// Reconstruct materializes U·diag(S)·Vᵀ (mostly for tests and error
// metrics).
func (r *Result[T]) Reconstruct() *dense.Matrix[T] {
	return ReconstructRank(r.U, r.S, r.V, len(r.S))
}

// ReconstructRank materializes the rank-k truncation U_k·Σ_k·V_kᵀ.
func ReconstructRank[T dense.Float](u *dense.Matrix[T], s []T, v *dense.Matrix[T], k int) *dense.Matrix[T] {
	if k > len(s) {
		k = len(s)
	}
	us := dense.New[T](u.Rows, k)
	for j := 0; j < k; j++ {
		col := us.Col(j)
		copy(col, u.Col(j))
		blas.Scal(s[j], col)
	}
	out := dense.New[T](u.Rows, v.Rows)
	vk := v.View(0, 0, v.Rows, k)
	blas.Gemm(blas.NoTrans, blas.Trans, 1, us, vk, 0, out)
	return out
}
