package svd

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/matgen"
	"tcqr/internal/rgs"
)

func TestJacobiKnownSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sigma := []float64{9, 4, 2, 1, 0.25, 0.01}
	a := matgen.WithSpectrum(rng, 20, 6, sigma)
	res, err := Jacobi(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sigma {
		if math.Abs(res.S[i]-want) > 1e-10*want {
			t.Errorf("σ_%d = %v, want %v", i, res.S[i], want)
		}
	}
	if oe := accuracy.OrthoError64(res.U); oe > 1e-12 {
		t.Errorf("U orthogonality %g", oe)
	}
	if oe := accuracy.OrthoError64(res.V); oe > 1e-12 {
		t.Errorf("V orthogonality %g", oe)
	}
	// Reconstruction.
	rec := res.Reconstruct()
	for i := range rec.Data {
		if math.Abs(rec.Data[i]-a.Data[i]) > 1e-11 {
			t.Fatalf("reconstruction differs at %d: %v vs %v", i, rec.Data[i], a.Data[i])
		}
	}
}

func TestJacobiSquareAndEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Square random.
	a := matgen.Normal(rng, 12, 12)
	res, err := Jacobi(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Reconstruct()
	var worst float64
	for i := range rec.Data {
		if d := math.Abs(rec.Data[i] - a.Data[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-11 {
		t.Errorf("square reconstruction error %g", worst)
	}
	// Descending order.
	for i := 1; i < len(res.S); i++ {
		if res.S[i] > res.S[i-1] {
			t.Fatal("singular values not sorted")
		}
	}
	// Identity.
	id := dense.New[float64](5, 5)
	id.SetIdentity()
	ri, err := Jacobi(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ri.S {
		if math.Abs(s-1) > 1e-14 {
			t.Errorf("identity σ = %v", s)
		}
	}
	// Rank-deficient: a zero column.
	z := matgen.Normal(rng, 8, 3)
	for i := 0; i < 8; i++ {
		z.Set(i, 1, 0)
	}
	rz, err := Jacobi(z, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rz.S[2] > 1e-12 {
		t.Errorf("smallest σ of rank-2 matrix = %v", rz.S[2])
	}
	// Wide input rejected.
	if _, err := Jacobi(dense.New[float64](2, 4), 0); err == nil {
		t.Error("wide input must be rejected")
	}
}

func TestJacobiFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a64 := matgen.WithCond(rng, 30, 10, 100, matgen.Geometric)
	a := dense.ToF32(a64)
	res, err := Jacobi(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.S[0])-1) > 1e-5 {
		t.Errorf("σ₁ = %v, want 1", res.S[0])
	}
	if math.Abs(float64(res.S[9])-0.01) > 1e-5 {
		t.Errorf("σ_n = %v, want 0.01", res.S[9])
	}
}

func TestQRSVDMatchesBaseline(t *testing.T) {
	// Table 4's claim: RGSQRF-SVD and SGEQRF-SVD give the same truncation
	// quality, because truncation error dominates fp16 roundoff.
	rng := rand.New(rand.NewSource(4))
	m, n := 2048, 64
	a := dense.ToF32(matgen.WithCond(rng, m, n, 1e4, matgen.Arithmetic))

	rgsSVD, err := QRSVD(a, rgs.Options{Cutoff: 32})
	if err != nil {
		t.Fatal(err)
	}
	houseSVD, err := QRSVDHouseholder(a)
	if err != nil {
		t.Fatal(err)
	}
	sigma := matgen.SingularValues(n, 1e4, matgen.Arithmetic)
	for _, rank := range []int{4, 16, 32} {
		eR := rgsSVD.TruncationError(a, rank)
		eH := houseSVD.TruncationError(a, rank)
		eOpt := OptimalTruncationError(sigma, rank)
		// Same quality to within a relative percent …
		if math.Abs(eR-eH) > 0.01*eH {
			t.Errorf("rank %d: RGSQRF-SVD %v vs SGEQRF-SVD %v", rank, eR, eH)
		}
		// … and both near the Eckart–Young optimum.
		if eR > eOpt*1.02+1e-3 {
			t.Errorf("rank %d: error %v far above optimal %v", rank, eR, eOpt)
		}
	}
}

func TestTruncationErrorMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := dense.ToF32(matgen.WithCond(rng, 256, 32, 1e3, matgen.Geometric))
	s, err := QRSVD(a, rgs.Options{Cutoff: 16})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, rank := range []int{1, 2, 4, 8, 16, 32} {
		e := s.TruncationError(a, rank)
		if e > prev+1e-9 {
			t.Errorf("error not monotone at rank %d: %v > %v", rank, e, prev)
		}
		prev = e
	}
	// Full rank reconstructs to fp16-factorization accuracy.
	if full := s.TruncationError(a, 32); full > 5e-3 {
		t.Errorf("full-rank residual %v", full)
	}
	// Rank beyond n is clamped.
	if e := s.TruncationError(a, 100); math.Abs(e-prev) > 1e-9 {
		t.Errorf("clamped rank error %v vs %v", e, prev)
	}
}

func TestOptimalTruncationError(t *testing.T) {
	sigma := []float64{2, 1, 1}
	// rank 1: sqrt(2/6); rank 3: 0.
	if got, want := OptimalTruncationError(sigma, 1), math.Sqrt(2.0/6.0); math.Abs(got-want) > 1e-15 {
		t.Errorf("rank1 = %v, want %v", got, want)
	}
	if OptimalTruncationError(sigma, 3) != 0 {
		t.Error("full rank should be 0")
	}
	if OptimalTruncationError(nil, 1) != 0 {
		t.Error("empty spectrum should be 0")
	}
}
