package svd

import (
	"math/rand"
	"testing"

	"tcqr/internal/dense"
	"tcqr/internal/matgen"
	"tcqr/internal/rgs"
)

func BenchmarkJacobi(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := matgen.WithCond(rng, 64, 64, 1e3, matgen.Geometric)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Jacobi(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQRSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := dense.ToF32(matgen.WithCond(rng, 2048, 64, 1e4, matgen.Arithmetic))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := QRSVD(a, rgs.Options{Cutoff: 32}); err != nil {
			b.Fatal(err)
		}
	}
}
