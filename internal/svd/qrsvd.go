package svd

import (
	"math"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/house"
	"tcqr/internal/rgs"
)

// TallSVD is the thin SVD of a tall-skinny matrix computed by the QR-SVD
// algorithm of Section 3.4.
type TallSVD struct {
	U *dense.M32 // m×n = Q·U_R
	S []float32  // descending singular values
	V *dense.M32 // n×n
}

// QRSVDWithFactor completes the QR-SVD pipeline from an existing RGSQRF
// factorization: R = U_R·Σ·Vᵀ (one-sided Jacobi), then U = Q·U_R (one more
// GEMM, also a neural-engine candidate, but the paper runs only the QR on
// the TensorCore so this stays in FP32).
func QRSVDWithFactor(f *rgs.Result) (*TallSVD, error) {
	rsvd, err := Jacobi(f.R, 0)
	if err != nil {
		return nil, err
	}
	u := dense.New[float32](f.Q.Rows, f.Q.Cols)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, f.Q, rsvd.U, 0, u)
	return &TallSVD{U: u, S: rsvd.S, V: rsvd.V}, nil
}

// QRSVD runs the full RGSQRF-SVD pipeline on a. opts configures the QR
// stage (TensorCore engine by default).
func QRSVD(a *dense.M32, opts rgs.Options) (*TallSVD, error) {
	f, err := rgs.Factor(a, opts)
	if err != nil {
		return nil, err
	}
	return QRSVDWithFactor(f)
}

// QRSVDHouseholder is the SGEQRF-SVD baseline of Table 4: single-precision
// Householder QR followed by the same Jacobi SVD of R.
func QRSVDHouseholder(a *dense.M32) (*TallSVD, error) {
	qr := house.Factor(a, 0)
	r := qr.R()
	rsvd, err := Jacobi(r, 0)
	if err != nil {
		return nil, err
	}
	q := qr.Q()
	u := dense.New[float32](a.Rows, a.Cols)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, q, rsvd.U, 0, u)
	return &TallSVD{U: u, S: rsvd.S, V: rsvd.V}, nil
}

// TruncationError returns ‖A − U_r·Σ_r·V_rᵀ‖_F / ‖A‖_F evaluated in
// float64 — the Table 4 quality metric.
func (t *TallSVD) TruncationError(a *dense.M32, rank int) float64 {
	if rank > len(t.S) {
		rank = len(t.S)
	}
	a64 := dense.ToF64(a)
	us := dense.New[float64](t.U.Rows, rank)
	for j := 0; j < rank; j++ {
		src := t.U.Col(j)
		dst := us.Col(j)
		s := float64(t.S[j])
		for i, v := range src {
			dst[i] = float64(v) * s
		}
	}
	v64 := dense.ToF64(t.V.View(0, 0, t.V.Rows, rank))
	approx := dense.New[float64](a.Rows, a.Cols)
	blas.Gemm(blas.NoTrans, blas.Trans, 1, us, v64, 0, approx)
	for i := range approx.Data {
		approx.Data[i] -= a64.Data[i]
	}
	return dense.NormFro(approx) / dense.NormFro(a64)
}

// OptimalTruncationError returns the theoretically optimal relative rank-r
// error given the exact singular values: √(Σ_{i>r} σᵢ²)/‖σ‖₂ (Eckart-Young
// in the Frobenius norm). Used to validate that QR-SVD truncation is
// near-optimal.
func OptimalTruncationError(sigma []float64, rank int) float64 {
	var tail, total float64
	for i, s := range sigma {
		total += s * s
		if i >= rank {
			tail += s * s
		}
	}
	if total == 0 {
		return 0
	}
	return math.Sqrt(tail / total)
}
