package wirefmt

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzBinaryFrameDecode throws arbitrary bytes at the frame decoder: it
// must reject malformed input with an error — truncated payloads, lying
// length fields, overflow-scale dimensions — and never panic. Frames that
// do decode must re-encode to the identical bytes (the codec is
// canonical), and float views must stay in bounds even for NaN/Inf
// payloads.
func FuzzBinaryFrameDecode(f *testing.F) {
	seed := func(secs ...Section) {
		buf, err := AppendFrame(nil, secs...)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	seed(JSONSection([]byte(`{"key":"m0-e000-p0-c0-r00-h0"}`)))
	seed(VectorSection([]float64{1, math.NaN(), math.Inf(1), math.Inf(-1)}))
	seed(JSONSection([]byte(`{}`)), MatrixSection(3, 2, []float64{1, 2, 3, 4, 5, 6}))
	seed(JSONSection(nil), MatrixSection(2, 2, []float64{1, 0, 0, 1}), VectorSection([]float64{0.5, -0.5}))
	// Hand-built hostile headers: overflow-scale dims and lying lengths.
	big := make([]byte, 32)
	copy(big, Magic[:])
	big[4], big[5] = Version, 1
	binary.LittleEndian.PutUint32(big[8:], 32)
	big[16] = byte(TagMatrix)
	binary.LittleEndian.PutUint32(big[20:], 0x80000000)
	binary.LittleEndian.PutUint32(big[24:], 0x80000000)
	f.Add(big)
	f.Add([]byte("TCQF"))
	f.Add(make([]byte, 16))

	scratch := make([]Section, 0, MaxSections)
	f.Fuzz(func(t *testing.T, data []byte) {
		secs, err := Decode(data, scratch)
		if err != nil {
			return
		}
		// Valid frames round-trip byte-for-byte: rebuild from the decoded
		// sections (converting float payloads through the typed view) and
		// compare.
		rebuilt := make([]Section, len(secs))
		for i, s := range secs {
			switch s.Tag {
			case TagJSON:
				rebuilt[i] = JSONSection(s.Raw)
			case TagMatrix:
				v := s.Float64s()
				if len(v) != int(s.A)*int(s.B) {
					t.Fatalf("matrix view has %d elements for %dx%d", len(v), s.A, s.B)
				}
				rebuilt[i] = MatrixSection(int(s.A), int(s.B), v)
			case TagVector:
				v := s.Float64s()
				if len(v) != int(s.A) {
					t.Fatalf("vector view has %d elements for length %d", len(v), s.A)
				}
				rebuilt[i] = VectorSection(v)
			default:
				t.Fatalf("Decode returned unknown tag %d", s.Tag)
			}
		}
		out, err := AppendFrame(nil, rebuilt...)
		if err != nil {
			t.Fatalf("re-encode of a decoded frame failed: %v", err)
		}
		if string(out) != string(data) {
			t.Fatalf("decode/encode round trip changed bytes:\n in  %x\n out %x", data, out)
		}
	})
}
