package wirefmt

import (
	"errors"
	"math"
	"strings"
	"testing"
	"unsafe"
)

func TestForwardSectionRoundTrip(t *testing.T) {
	frame, err := AppendFrame(nil,
		JSONSection([]byte(`{"key":"abc"}`)),
		VectorSection([]float64{1, 2, 3}),
		ForwardSection(2500, 3, "node-a"),
	)
	if err != nil {
		t.Fatal(err)
	}
	secs, err := Decode(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 3 {
		t.Fatalf("decoded %d sections, want 3", len(secs))
	}
	fwd := secs[2]
	if fwd.Tag != TagForward {
		t.Fatalf("trailing tag = %d, want TagForward", fwd.Tag)
	}
	if fwd.A != 2500 || fwd.B != 3 || string(fwd.Raw) != "node-a" {
		t.Fatalf("forward section = {A:%d B:%d Raw:%q}, want {2500 3 node-a}", fwd.A, fwd.B, fwd.Raw)
	}
}

func TestForwardSectionEmptyOrigin(t *testing.T) {
	// A zero deadline, zero attempts, empty-origin section is legal: it still
	// marks the request as forwarded.
	frame, err := AppendFrame(nil, JSONSection(nil), ForwardSection(0, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	secs, err := Decode(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := secs[1]; got.Tag != TagForward || got.A != 0 || got.B != 0 || len(got.Raw) != 0 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestForwardSectionEncodeValidation(t *testing.T) {
	if _, err := AppendFrame(nil, Section{Tag: TagForward, B: MaxForwardAttempts + 1}); err == nil {
		t.Error("attempt budget past MaxForwardAttempts must not encode")
	}
	long := strings.Repeat("x", MaxForwardOrigin+1)
	if _, err := AppendFrame(nil, ForwardSection(0, 1, long)); err == nil {
		t.Error("origin past MaxForwardOrigin must not encode")
	}
	if _, err := AppendFrame(nil, ForwardSection(0, 1, strings.Repeat("x", MaxForwardOrigin))); err != nil {
		t.Errorf("origin at exactly MaxForwardOrigin must encode: %v", err)
	}
}

func TestForwardSectionDecodeValidation(t *testing.T) {
	// Corrupt a valid frame's forward-section attempt budget (section header
	// dim b) past the cap and require a strict-format error.
	frame, err := AppendFrame(nil, JSONSection(nil), ForwardSection(0, 1, "n"))
	if err != nil {
		t.Fatal(err)
	}
	// Layout: 16B frame header, 16B JSON section header (+0 payload), then
	// the forward section header; its b field is at offset +8.
	off := 16 + 16 + 8
	frame[off] = 0xFF
	frame[off+1] = 0x01 // b = 511 > MaxForwardAttempts
	if _, err := Decode(frame, nil); !errors.Is(err, ErrFormat) {
		t.Fatalf("oversized attempt budget decoded: err=%v", err)
	}
}

// TestFloat64sUnalignedFallback pins down the element-wise decode fallback:
// a payload that is not 8-byte aligned must still produce bit-identical
// floats to the zero-copy path, just via copying. Real frames are always
// aligned (GetBuffer guarantees it); the fallback exists for callers that
// hand Decode an arbitrary slice.
func TestFloat64sUnalignedFallback(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, -math.MaxFloat64, math.Float64frombits(0x7FF8000000000001)}
	frame, err := AppendFrame(nil, JSONSection(nil), VectorSection(vals))
	if err != nil {
		t.Fatal(err)
	}

	// Shift the whole frame by one byte so every payload lands misaligned.
	shifted := make([]byte, len(frame)+1)
	copy(shifted[1:], frame)
	secs, err := Decode(shifted[1:], nil)
	if err != nil {
		t.Fatal(err)
	}
	vec := FindSection(secs, TagVector)
	if vec == nil {
		t.Fatal("no vector section")
	}
	if uintptr(unsafe.Pointer(&vec.Raw[0]))%8 == 0 {
		t.Fatal("test did not achieve a misaligned payload")
	}
	got := vec.Float64s()
	if len(got) != len(vals) {
		t.Fatalf("decoded %d floats, want %d", len(got), len(vals))
	}
	// Bit-identical, not approximately equal: the fallback must preserve
	// NaN payloads, signed zeros, infinities and subnormals exactly.
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Errorf("element %d: bits %016x, want %016x",
				i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
		}
	}

	// Control: the same frame decoded from its aligned origin yields the
	// same bits through the zero-copy path.
	aligned, err := Decode(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := FindSection(aligned, TagVector).Float64s()
	for i := range vals {
		if math.Float64bits(ctrl[i]) != math.Float64bits(got[i]) {
			t.Errorf("aligned/unaligned mismatch at %d: %016x vs %016x",
				i, math.Float64bits(ctrl[i]), math.Float64bits(got[i]))
		}
	}

	// The fallback returns a copy — mutating it must not write through to
	// the frame buffer (the zero-copy path aliases by contract; the fallback
	// must not half-alias).
	got[0] = 42
	if reDecoded := vec.Float64s(); reDecoded[0] != vals[0] {
		t.Errorf("fallback aliased the frame buffer: re-decode saw %v", reDecoded[0])
	}
}
