package wirefmt

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"
)

func mustFrame(t *testing.T, secs ...Section) []byte {
	t.Helper()
	buf, err := AppendFrame(nil, secs...)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	return buf
}

// TestGoldenFrameBytes pins the exact wire bytes of a small frame: the
// format is the future inter-node protocol, so the layout must never drift
// silently. The expected bytes are assembled by hand, independent of
// AppendFrame.
func TestGoldenFrameBytes(t *testing.T) {
	meta := []byte(`{"key":"k"}`) // 11 bytes -> padded to 16
	vec := []float64{1, -2.5}
	got := mustFrame(t, JSONSection(meta), VectorSection(vec))

	var want bytes.Buffer
	want.Write(Magic[:])
	want.Write([]byte{Version, 2, 0, 0})
	binary.Write(&want, binary.LittleEndian, uint32(16+16+16+16+16)) // header + 2*(secheader+payload)
	binary.Write(&want, binary.LittleEndian, uint32(0))
	want.Write([]byte{byte(TagJSON), 0, 0, 0})
	binary.Write(&want, binary.LittleEndian, [3]uint32{0, 0, 11})
	want.Write(meta)
	want.Write(make([]byte, 5)) // pad 11 -> 16
	want.Write([]byte{byte(TagVector), 0, 0, 0})
	binary.Write(&want, binary.LittleEndian, [3]uint32{2, 0, 16})
	binary.Write(&want, binary.LittleEndian, [2]uint64{math.Float64bits(1), math.Float64bits(-2.5)})

	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("frame bytes drifted:\n got %s\nwant %s", hex.EncodeToString(got), hex.EncodeToString(want.Bytes()))
	}

	// The first 16 bytes are additionally pinned as a literal so a byte-order
	// or magic regression reads as an obvious diff.
	const goldenHeader = "54435146010200005000000000000000"
	if h := hex.EncodeToString(got[:16]); h != goldenHeader {
		t.Fatalf("frame header = %s, want %s", h, goldenHeader)
	}
}

func TestRoundTrip(t *testing.T) {
	meta := []byte(`{"iterations":3,"converged":true}`)
	mat := []float64{1, 2, 3, 4, 5, 6} // 3x2 column-major
	vec := []float64{0.5, math.Pi, -0}
	buf := mustFrame(t, JSONSection(meta), MatrixSection(3, 2, mat), VectorSection(vec))

	secs, err := Decode(buf, nil)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(secs) != 3 {
		t.Fatalf("decoded %d sections, want 3", len(secs))
	}
	if js := FindSection(secs, TagJSON); js == nil || !bytes.Equal(js.Raw, meta) {
		t.Fatalf("JSON section = %+v", js)
	}
	ms := FindSection(secs, TagMatrix)
	if ms == nil || ms.A != 3 || ms.B != 2 {
		t.Fatalf("matrix section = %+v", ms)
	}
	gotMat := ms.Float64s()
	for i, v := range mat {
		if math.Float64bits(gotMat[i]) != math.Float64bits(v) {
			t.Fatalf("matrix[%d] = %g, want %g", i, gotMat[i], v)
		}
	}
	vs := FindSection(secs, TagVector)
	gotVec := vs.Float64s()
	for i, v := range vec {
		if math.Float64bits(gotVec[i]) != math.Float64bits(v) {
			t.Fatalf("vector[%d] = %g, want %g", i, gotVec[i], v)
		}
	}
}

// TestZeroCopyAliasing verifies the decode fast path: on an aligned
// little-endian buffer the float view must alias the frame bytes, not copy
// them.
func TestZeroCopyAliasing(t *testing.T) {
	if !nativeLittleEndian {
		t.Skip("big-endian host: views are converting copies by design")
	}
	vec := []float64{1, 2, 3, 4}
	buf := mustFrame(t, VectorSection(vec))
	secs, err := Decode(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	view := secs[0].Float64s()
	buf[len(buf)-8] = 0xFF // mutate the last float's low byte through the frame
	if view[3] == 4 {
		t.Fatal("Float64s returned a copy on an aligned little-endian buffer")
	}
}

// TestDecodeZeroAlloc pins the zero-allocation decode contract the serving
// hot path depends on: frame -> sections -> float view without heap growth
// when the caller supplies scratch.
func TestDecodeZeroAlloc(t *testing.T) {
	vec := make([]float64, 1024)
	buf := mustFrame(t, JSONSection([]byte(`{"key":"x"}`)), VectorSection(vec))
	scratch := make([]Section, 0, MaxSections)
	allocs := testing.AllocsPerRun(100, func() {
		secs, err := Decode(buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if v := FindSection(secs, TagVector).Float64s(); len(v) != 1024 {
			t.Fatal("bad view")
		}
	})
	if allocs != 0 {
		t.Fatalf("Decode+Float64s allocated %.1f times per run, want 0", allocs)
	}
}

func TestEncodeIntoPooledBuffer(t *testing.T) {
	vec := []float64{1, 2, 3}
	n, err := FrameLen(VectorSection(vec))
	if err != nil {
		t.Fatal(err)
	}
	buf := GetBuffer(n)
	defer PutBuffer(buf)
	out, err := AppendFrame(buf, VectorSection(vec))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("frame length %d, want %d", len(out), n)
	}
	if _, err := Decode(out, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := mustFrame(t, VectorSection([]float64{1, 2}))
	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:12],
		"bad magic":      append([]byte("NOPE"), good[4:]...),
		"bad version":    mutate(good, 4, 9),
		"reserved byte":  mutate(good, 6, 1),
		"section count":  mutate(good, 5, MaxSections+1),
		"length low":     mutate(good, 8, byte(len(good)-1)),
		"truncated":      good[:len(good)-4],
		"trailing":       append(append([]byte(nil), good...), 0),
		"unknown tag":    mutate(good, 16, 99),
		"vector dim b":   mutate(good, 24, 1),
		"payload len":    mutate(good, 28, 8),
		"json with dims": func() []byte { b := mustFrame(t, JSONSection([]byte("{}"))); return mutate(b, 20, 1) }(),
		"nonzero pad":    func() []byte { b := mustFrame(t, JSONSection([]byte("{}"))); return mutate(b, len(b)-1, 7) }(),
		"matrix zero dim": func() []byte {
			b := mustFrame(t, MatrixSection(1, 1, []float64{1}))
			b = mutate(b, 20, 0) // rows = 0
			return b
		}(),
	}
	for name, buf := range cases {
		if _, err := Decode(buf, nil); err == nil {
			t.Errorf("%s: Decode accepted a malformed frame", name)
		}
	}
	// Overflow-scale dims: rows*cols*8 wraps u64 math only if unchecked.
	big := mustFrame(t, MatrixSection(1, 1, []float64{1}))
	binary.LittleEndian.PutUint32(big[20:], 0x80000000)
	binary.LittleEndian.PutUint32(big[24:], 0x80000000)
	if _, err := Decode(big, nil); err == nil {
		t.Error("overflow-scale dims accepted")
	}
}

func mutate(b []byte, i int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[i] = v
	return out
}

func TestAppendFrameValidation(t *testing.T) {
	if _, err := AppendFrame(nil, Section{Tag: TagMatrix, A: 2, B: 2, F64: []float64{1}}); err == nil {
		t.Error("mismatched matrix dims accepted")
	}
	if _, err := AppendFrame(nil, Section{Tag: Tag(42)}); err == nil {
		t.Error("unknown tag accepted")
	}
	secs := make([]Section, MaxSections+1)
	for i := range secs {
		secs[i] = JSONSection([]byte("{}"))
	}
	if _, err := AppendFrame(nil, secs...); err == nil {
		t.Error("too many sections accepted")
	}
}
