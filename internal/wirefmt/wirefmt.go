// Package wirefmt implements the tcqr binary frame codec: the
// length-prefixed little-endian encoding tcqrd serves alongside JSON under
// the application/x-tcqr-frame media type, and the inter-node format the
// cluster tier (internal/cluster) forwards requests over.
//
// A frame is a 16-byte header followed by up to MaxSections sections, each
// a 16-byte section header plus a payload padded to an 8-byte boundary:
//
//	frame header   magic "TCQF" | version u8 | section count u8 |
//	               reserved u16 | frame length u32 | reserved u32
//	section header tag u8 | reserved u8×3 | dim a u32 | dim b u32 |
//	               payload length u32
//	payload        payload-length bytes, zero-padded to 8-byte alignment
//
// All integers are little-endian. Float payloads are IEEE-754 float64
// little-endian; because every payload starts on an 8-byte boundary
// (headers are 16 bytes and padding keeps sections aligned), a decoder on a
// little-endian host can expose them as []float64 views of the frame buffer
// without copying. Section tags: TagJSON carries request/response metadata
// as UTF-8 JSON (a=0, b=0); TagMatrix carries a column-major a×b float64
// matrix; TagVector carries a float64 vector of length a (b=0); TagForward
// carries peer-forward routing metadata for the cluster tier (a=deadline ms,
// b=attempt budget, payload=origin node id). The frame
// length field covers the whole frame including the header, and decoding is
// strict: bad magic, unknown versions or tags, dimension/length mismatches,
// trailing bytes, and nonzero padding are all errors — never panics.
package wirefmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"unsafe"
)

// ContentType is the media type negotiated for binary frames.
const ContentType = "application/x-tcqr-frame"

// Version is the frame format version this codec reads and writes.
const Version = 1

// MaxSections bounds the sections in one frame (largest real frame today is
// a low-rank response: JSON + U + s + V).
const MaxSections = 8

const (
	headerLen    = 16
	secHeaderLen = 16
)

// Magic opens every frame.
var Magic = [4]byte{'T', 'C', 'Q', 'F'}

// Tag identifies a section's payload type.
type Tag uint8

const (
	// TagJSON is UTF-8 JSON metadata (the non-bulk request/response fields).
	TagJSON Tag = 1
	// TagMatrix is a column-major float64 matrix; A=rows, B=cols.
	TagMatrix Tag = 2
	// TagVector is a float64 vector; A=len, B=0.
	TagVector Tag = 3
	// TagForward marks a peer-forwarded request in the cluster tier:
	// A=remaining deadline budget in milliseconds (0 = none), B=remaining
	// forward attempt budget (≤ MaxForwardAttempts), Raw=origin node id
	// (UTF-8, ≤ MaxForwardOrigin bytes). A receiving node serves such a
	// request locally and never re-forwards it (the routing loop guard).
	TagForward Tag = 4
)

// MaxForwardAttempts bounds the attempt budget a forward section may carry.
const MaxForwardAttempts = 255

// MaxForwardOrigin bounds the origin node-id payload of a forward section.
const MaxForwardOrigin = 256

// Section is one frame section. On decode, Raw aliases the frame buffer
// (valid only while the buffer is); on encode, exactly one of Raw (TagJSON)
// or F64 (TagMatrix/TagVector) supplies the payload.
type Section struct {
	Tag  Tag
	A, B uint32 // matrix rows×cols, or vector length×0, or 0×0 for JSON
	Raw  []byte
	F64  []float64
}

// JSONSection wraps metadata bytes for encoding.
func JSONSection(meta []byte) Section {
	return Section{Tag: TagJSON, Raw: meta}
}

// MatrixSection wraps a column-major rows×cols float64 payload for encoding.
func MatrixSection(rows, cols int, data []float64) Section {
	return Section{Tag: TagMatrix, A: uint32(rows), B: uint32(cols), F64: data}
}

// VectorSection wraps a float64 vector payload for encoding.
func VectorSection(data []float64) Section {
	return Section{Tag: TagVector, A: uint32(len(data)), F64: data}
}

// ForwardSection wraps peer-forward routing metadata for encoding:
// the remaining deadline budget in milliseconds, the remaining forward
// attempt budget, and the origin node id.
func ForwardSection(deadlineMS uint32, attempts uint8, origin string) Section {
	return Section{Tag: TagForward, A: deadlineMS, B: uint32(attempts), Raw: []byte(origin)}
}

// Float64s returns the section payload as float64s. On a little-endian host
// with an 8-byte-aligned payload (the layout guarantees alignment whenever
// the frame buffer itself is 8-byte aligned) the returned slice is a
// zero-copy view of Raw; otherwise the payload is converted element-wise.
// Only valid for TagMatrix/TagVector sections produced by Decode.
func (s *Section) Float64s() []float64 {
	n := len(s.Raw) / 8
	if n == 0 {
		return nil
	}
	p := unsafe.Pointer(&s.Raw[0])
	if nativeLittleEndian && uintptr(p)%8 == 0 {
		return unsafe.Slice((*float64)(p), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(s.Raw[8*i:]))
	}
	return out
}

var nativeLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// payloadLen returns the encoded payload length of s in bytes.
func (s *Section) payloadLen() (int, error) {
	switch s.Tag {
	case TagJSON:
		return len(s.Raw), nil
	case TagMatrix:
		if uint64(s.A)*uint64(s.B) != uint64(len(s.F64)) {
			return 0, fmt.Errorf("wirefmt: matrix section %dx%d but %d elements", s.A, s.B, len(s.F64))
		}
		return 8 * len(s.F64), nil
	case TagVector:
		if int(s.A) != len(s.F64) {
			return 0, fmt.Errorf("wirefmt: vector section length %d but %d elements", s.A, len(s.F64))
		}
		return 8 * len(s.F64), nil
	case TagForward:
		if s.B > MaxForwardAttempts {
			return 0, fmt.Errorf("wirefmt: forward section attempt budget %d exceeds %d", s.B, MaxForwardAttempts)
		}
		if len(s.Raw) > MaxForwardOrigin {
			return 0, fmt.Errorf("wirefmt: forward section origin of %d bytes exceeds %d", len(s.Raw), MaxForwardOrigin)
		}
		return len(s.Raw), nil
	}
	return 0, fmt.Errorf("wirefmt: unknown section tag %d", s.Tag)
}

func pad8(n int) int { return (n + 7) &^ 7 }

// FrameLen returns the encoded size of a frame holding secs, so callers can
// size a buffer before AppendFrame.
func FrameLen(secs ...Section) (int, error) {
	total := headerLen
	for i := range secs {
		n, err := secs[i].payloadLen()
		if err != nil {
			return 0, err
		}
		total += secHeaderLen + pad8(n)
	}
	return total, nil
}

// AppendFrame appends one encoded frame holding secs to dst and returns the
// extended buffer. Float payloads are written little-endian regardless of
// host byte order.
func AppendFrame(dst []byte, secs ...Section) ([]byte, error) {
	if len(secs) > MaxSections {
		return dst, fmt.Errorf("wirefmt: %d sections exceeds the maximum %d", len(secs), MaxSections)
	}
	total, err := FrameLen(secs...)
	if err != nil {
		return dst, err
	}
	if total > math.MaxUint32 {
		return dst, fmt.Errorf("wirefmt: frame of %d bytes exceeds the u32 length field", total)
	}
	base := len(dst)
	if cap(dst)-base < total {
		grown := make([]byte, base, base+total)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+total]
	h := dst[base:]
	copy(h, Magic[:])
	h[4] = Version
	h[5] = byte(len(secs))
	h[6], h[7] = 0, 0
	binary.LittleEndian.PutUint32(h[8:], uint32(total))
	binary.LittleEndian.PutUint32(h[12:], 0)
	off := headerLen
	for i := range secs {
		s := &secs[i]
		n, _ := s.payloadLen()
		sh := h[off:]
		sh[0] = byte(s.Tag)
		sh[1], sh[2], sh[3] = 0, 0, 0
		binary.LittleEndian.PutUint32(sh[4:], s.A)
		binary.LittleEndian.PutUint32(sh[8:], s.B)
		binary.LittleEndian.PutUint32(sh[12:], uint32(n))
		off += secHeaderLen
		body := h[off : off+pad8(n)]
		if s.Tag == TagMatrix || s.Tag == TagVector {
			putFloat64s(body, s.F64)
		} else {
			copy(body, s.Raw)
		}
		for i := n; i < pad8(n); i++ {
			body[i] = 0
		}
		off += pad8(n)
	}
	return dst, nil
}

// putFloat64s writes vals little-endian into dst. On little-endian hosts
// this is one copy of the underlying bytes.
func putFloat64s(dst []byte, vals []float64) {
	if len(vals) == 0 {
		return
	}
	if nativeLittleEndian {
		src := unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), 8*len(vals))
		copy(dst, src)
		return
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// ErrFormat wraps every decode error so callers can classify malformed
// frames without matching message text.
var ErrFormat = errors.New("malformed frame")

func formatErr(format string, args ...any) error {
	return fmt.Errorf("wirefmt: %w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

// Decode parses one frame from buf, appending sections to scratch (pass nil
// or a reused scratch[:0] to avoid the slice allocation). Section Raw fields
// alias buf. Decoding is strict — see the package comment — and bounds every
// dimension product in uint64 so hostile headers cannot overflow.
func Decode(buf []byte, scratch []Section) ([]Section, error) {
	if len(buf) < headerLen {
		return nil, formatErr("%d bytes is shorter than the %d-byte header", len(buf), headerLen)
	}
	if [4]byte(buf[:4]) != Magic {
		return nil, formatErr("bad magic %q", buf[:4])
	}
	if buf[4] != Version {
		return nil, formatErr("unsupported version %d", buf[4])
	}
	nsec := int(buf[5])
	if nsec > MaxSections {
		return nil, formatErr("%d sections exceeds the maximum %d", nsec, MaxSections)
	}
	if buf[6] != 0 || buf[7] != 0 {
		return nil, formatErr("nonzero reserved header bytes")
	}
	if got := binary.LittleEndian.Uint32(buf[8:]); uint64(got) != uint64(len(buf)) {
		return nil, formatErr("frame length field %d but %d bytes present", got, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[12:]) != 0 {
		return nil, formatErr("nonzero reserved header word")
	}
	secs := scratch[:0]
	off := headerLen
	for i := 0; i < nsec; i++ {
		if len(buf)-off < secHeaderLen {
			return nil, formatErr("section %d header truncated", i)
		}
		sh := buf[off:]
		tag := Tag(sh[0])
		if sh[1] != 0 || sh[2] != 0 || sh[3] != 0 {
			return nil, formatErr("section %d: nonzero reserved bytes", i)
		}
		a := binary.LittleEndian.Uint32(sh[4:])
		b := binary.LittleEndian.Uint32(sh[8:])
		plen := int(binary.LittleEndian.Uint32(sh[12:]))
		off += secHeaderLen
		if len(buf)-off < pad8(plen) {
			return nil, formatErr("section %d: payload of %d bytes truncated", i, plen)
		}
		switch tag {
		case TagJSON:
			if a != 0 || b != 0 {
				return nil, formatErr("section %d: JSON section with nonzero dims %dx%d", i, a, b)
			}
		case TagMatrix:
			if a == 0 || b == 0 {
				return nil, formatErr("section %d: matrix section with zero dim %dx%d", i, a, b)
			}
			// The element count is bounded before multiplying by 8: dims near
			// 2³¹ would wrap rows·cols·8 past uint64 and sneak a zero-payload
			// header through the length check.
			if uint64(a)*uint64(b) > math.MaxUint32/8 {
				return nil, formatErr("section %d: matrix %dx%d exceeds the u32 payload field", i, a, b)
			}
			if uint64(a)*uint64(b)*8 != uint64(plen) {
				return nil, formatErr("section %d: matrix %dx%d needs %d payload bytes, header says %d",
					i, a, b, uint64(a)*uint64(b)*8, plen)
			}
		case TagVector:
			if b != 0 {
				return nil, formatErr("section %d: vector section with nonzero second dim %d", i, b)
			}
			if uint64(a)*8 != uint64(plen) {
				return nil, formatErr("section %d: vector of %d needs %d payload bytes, header says %d",
					i, a, uint64(a)*8, plen)
			}
		case TagForward:
			if b > MaxForwardAttempts {
				return nil, formatErr("section %d: forward attempt budget %d exceeds %d", i, b, MaxForwardAttempts)
			}
			if plen > MaxForwardOrigin {
				return nil, formatErr("section %d: forward origin of %d bytes exceeds %d", i, plen, MaxForwardOrigin)
			}
		default:
			return nil, formatErr("section %d: unknown tag %d", i, tag)
		}
		payload := buf[off : off+plen]
		for _, pb := range buf[off+plen : off+pad8(plen)] {
			if pb != 0 {
				return nil, formatErr("section %d: nonzero padding", i)
			}
		}
		secs = append(secs, Section{Tag: tag, A: a, B: b, Raw: payload})
		off += pad8(plen)
	}
	if off != len(buf) {
		return nil, formatErr("%d trailing bytes after %d sections", len(buf)-off, nsec)
	}
	return secs, nil
}

// FindSection returns the first section with the given tag, or nil.
func FindSection(secs []Section, tag Tag) *Section {
	for i := range secs {
		if secs[i].Tag == tag {
			return &secs[i]
		}
	}
	return nil
}

// maxPooledBuf caps the capacity a recycled buffer may retain: frames
// larger than this (a cold 2M-element factorize body is ~16MB) are left to
// the garbage collector rather than pinned in the pool.
const maxPooledBuf = 4 << 20

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

// GetBuffer returns a zero-length byte buffer with capacity at least
// sizeHint, drawn from a pool. The returned slice's backing array is 8-byte
// aligned (Go heap allocations of this size class always are), so frames
// decoded in place support zero-copy float views. Release with PutBuffer.
func GetBuffer(sizeHint int) []byte {
	b := *bufPool.Get().(*[]byte)
	if cap(b) < sizeHint {
		bufPool.Put(&b)
		return make([]byte, 0, sizeHint)
	}
	return b[:0]
}

// PutBuffer recycles a buffer obtained from GetBuffer. Callers must not
// retain views into b (including Float64s results) after releasing it.
func PutBuffer(b []byte) {
	if b == nil || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
