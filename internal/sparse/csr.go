// Package sparse provides a compressed-sparse-row matrix and the
// matrix-vector products the iterative least squares solvers need.
// Section 2.2 of the paper notes that for very large and sparse problems
// iterative methods are preferred because "the only operation involving
// matrix A is the matrix-vector multiplication Av and Aᵀv" — this package
// supplies exactly that operation, so the repository's CGLS/LSQR (with or
// without a dense-QR preconditioner from a sketch) run on sparse operators
// too.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is an immutable sparse matrix in compressed-sparse-row format.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64
}

// Triplet is one explicit entry of a sparse matrix under construction.
type Triplet struct {
	Row, Col int
	Val      float64
}

// FromTriplets builds a CSR matrix from coordinate-format entries.
// Duplicate (row, col) entries are summed; explicit zeros are kept.
func FromTriplets(rows, cols int, entries []Triplet) (*CSR, error) {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d, %d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := append([]Triplet(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		m.colIdx = append(m.colIdx, sorted[i].Col)
		m.val = append(m.val, v)
		m.rowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m, nil
}

// Dims returns the matrix shape, satisfying the lls.Operator interface.
func (m *CSR) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// At returns the (i, j) element (zero if not stored). O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.val[k]
	}
	return 0
}

// Apply computes dst = A·src.
func (m *CSR) Apply(dst, src []float64) {
	if len(dst) != m.rows || len(src) != m.cols {
		panic(fmt.Sprintf("sparse: Apply shapes dst=%d src=%d for %dx%d", len(dst), len(src), m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * src[m.colIdx[k]]
		}
		dst[i] = s
	}
}

// ApplyTranspose computes dst = Aᵀ·src.
func (m *CSR) ApplyTranspose(dst, src []float64) {
	if len(dst) != m.cols || len(src) != m.rows {
		panic(fmt.Sprintf("sparse: ApplyTranspose shapes dst=%d src=%d for %dx%d", len(dst), len(src), m.rows, m.cols))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		si := src[i]
		if si == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			dst[m.colIdx[k]] += m.val[k] * si
		}
	}
}
