package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func smallCSR(t *testing.T) *CSR {
	t.Helper()
	// [[1 0 2], [0 3 0], [4 0 5], [0 0 6]]
	m, err := FromTriplets(4, 3, []Triplet{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}, {2, 2, 5}, {3, 2, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromTripletsAndAt(t *testing.T) {
	m := smallCSR(t)
	if r, c := m.Dims(); r != 4 || c != 3 {
		t.Fatalf("dims %dx%d", r, c)
	}
	if m.NNZ() != 6 {
		t.Fatalf("nnz %d", m.NNZ())
	}
	want := [][]float64{{1, 0, 2}, {0, 3, 0}, {4, 0, 5}, {0, 0, 6}}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != want[i][j] {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestDuplicatesSummed(t *testing.T) {
	m, err := FromTriplets(2, 2, []Triplet{{0, 0, 1}, {0, 0, 2.5}, {1, 1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 3.5 {
		t.Errorf("duplicate sum = %v", m.At(0, 0))
	}
	if m.NNZ() != 2 {
		t.Errorf("nnz %d", m.NNZ())
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	if _, err := FromTriplets(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := FromTriplets(2, 2, []Triplet{{0, -1, 1}}); err == nil {
		t.Error("negative column accepted")
	}
}

func TestApplyAndTranspose(t *testing.T) {
	m := smallCSR(t)
	x := []float64{1, 2, 3}
	y := make([]float64, 4)
	m.Apply(y, x)
	want := []float64{7, 6, 19, 18}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("Apply[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	u := []float64{1, -1, 2, 0.5}
	v := make([]float64, 3)
	m.ApplyTranspose(v, u)
	wantT := []float64{1*1 + 4*2, -1 * 3, 2*1 + 5*2 + 6*0.5}
	for i := range wantT {
		if v[i] != wantT[i] {
			t.Errorf("ApplyTranspose[%d] = %v, want %v", i, v[i], wantT[i])
		}
	}
}

func TestAgainstDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows, cols := 40, 25
	dense := make([][]float64, rows)
	var trips []Triplet
	for i := range dense {
		dense[i] = make([]float64, cols)
		for j := range dense[i] {
			if rng.Float64() < 0.15 {
				v := rng.NormFloat64()
				dense[i][j] = v
				trips = append(trips, Triplet{i, j, v})
			}
		}
	}
	m, err := FromTriplets(rows, cols, trips)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, rows)
	m.Apply(got, x)
	for i := 0; i < rows; i++ {
		var want float64
		for j := 0; j < cols; j++ {
			want += dense[i][j] * x[j]
		}
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("Apply row %d: %v vs %v", i, got[i], want)
		}
	}
	u := make([]float64, rows)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	gotT := make([]float64, cols)
	m.ApplyTranspose(gotT, u)
	for j := 0; j < cols; j++ {
		var want float64
		for i := 0; i < rows; i++ {
			want += dense[i][j] * u[i]
		}
		if math.Abs(gotT[j]-want) > 1e-12 {
			t.Fatalf("ApplyTranspose col %d: %v vs %v", j, gotT[j], want)
		}
	}
}

func TestEmptyMatrix(t *testing.T) {
	m, err := FromTriplets(3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 3)
	m.Apply(y, []float64{1, 1})
	for _, v := range y {
		if v != 0 {
			t.Fatal("empty matrix product nonzero")
		}
	}
}
