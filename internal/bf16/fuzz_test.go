package bf16

import (
	"math"
	"testing"
)

// refRoundBF is an independent float64 reference for the bfloat16 rounding
// in FromFloat32: round-to-nearest-even onto a 7-mantissa-bit grid with the
// full binary32 exponent range, saturating to ±Inf past MaxValue. It shares
// no code with the truncate-with-carry implementation under test.
func refRoundBF(x float32) float64 {
	v := float64(x)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	sign := 1.0
	if math.Signbit(v) {
		sign = -1
	}
	abs := math.Abs(v)
	var ulp float64
	if abs < math.Ldexp(1, -126) {
		ulp = math.Ldexp(1, -133) // subnormal spacing: 2^-126 · 2^-7
	} else {
		_, exp := math.Frexp(abs)    // abs = f·2^exp, f ∈ [0.5, 1)
		ulp = math.Ldexp(1, exp-1-7) // 7 mantissa bits: spacing 2^(e-7)
	}
	r := math.RoundToEven(abs/ulp) * ulp
	if r > MaxValue {
		return sign * math.Inf(1)
	}
	return sign * r
}

// FuzzBF16RoundTrip cross-checks the float32 → bfloat16 → float32 round
// trip against the float64 reference above, plus idempotence, the overflow
// classifier, and the fused RoundInPlaceCount overflow counter.
func FuzzBF16RoundTrip(f *testing.F) {
	seeds := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1,
		1.0078125,  // 1 + 2^-7, smallest step above 1
		1.00390625, // 1 + 2^-8, exactly halfway: ties to even (1)
		MaxValue,
		3.3961775e38,    // rounds to +Inf (above the midpoint)
		math.MaxFloat32, // top of float32: overflows bfloat16
		MinNormal,       // 2^-126
		1e-40, 1.4e-45,  // float32 subnormals
		3.14159265, 0.1, 65504,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, x float32) {
		got := float64(Round(x))
		want := refRoundBF(x)
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("Round(NaN input %x) = %v, want NaN", math.Float32bits(x), got)
			}
		} else if got != want || math.Signbit(got) != math.Signbit(want) {
			t.Fatalf("Round(%v) = %v, want %v", x, got, want)
		}

		h := FromFloat32(x)
		if !h.IsNaN() {
			if h2 := FromFloat32(h.Float32()); h2 != h {
				t.Fatalf("round trip not idempotent: %#04x -> %#04x (input %v)", uint16(h), uint16(h2), x)
			}
		}

		finiteIn := !math.IsNaN(float64(x)) && !math.IsInf(float64(x), 0)
		wantOvf := finiteIn && math.IsInf(want, 0)
		if ovf := Overflows(x); ovf != wantOvf {
			t.Fatalf("Overflows(%v) = %v, reference rounds to %v", x, ovf, want)
		}
		// The fused rounding-plus-counting pass must agree elementwise.
		buf := []float32{x}
		n := RoundInPlaceCount(buf)
		var wantCount int64
		if wantOvf {
			wantCount = 1
		}
		if n != wantCount {
			t.Fatalf("RoundInPlaceCount(%v) counted %d overflows, want %d", x, n, wantCount)
		}
		if !math.IsNaN(want) && float64(buf[0]) != want {
			t.Fatalf("RoundInPlaceCount rounded %v to %v, want %v", x, buf[0], want)
		}
	})
}
