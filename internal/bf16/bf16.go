// Package bf16 implements the bfloat16 floating point format in software:
// 1 sign bit, 8 exponent bits (the same range as binary32), 7 mantissa
// bits. Section 2.1 of the paper contrasts it with IEEE binary16: Google's
// TPU consumes bfloat16, which "has the same range as single precision,
// but its resolution is very limited (there is no bfloat16 number between
// 1 and 1.0078)" — more robust (no overflow below 3.4e38) but less
// precise (unit roundoff 2⁻⁸ vs binary16's 2⁻¹¹).
//
// The package mirrors internal/f16 so the TPU-style engine in
// internal/tcsim can round operands through either format, making the
// paper's FP16-vs-bfloat16 discussion an executable experiment.
package bf16

import "math"

// BFloat16 is a bfloat16 value in its raw bit representation — exactly the
// upper 16 bits of the corresponding binary32 pattern.
type BFloat16 uint16

// Format constants.
const (
	// MaxValue is the largest finite bfloat16 value, ~3.39e38.
	MaxValue = 3.3895313892515355e38
	// MinNormal is the smallest positive normal value, 2^-126.
	MinNormal = 1.1754943508222875e-38
	// Eps is the unit roundoff 2^-8 (half the spacing 2^-7 at 1.0) — about
	// ten times coarser than binary16's 2^-11, the "less stable/precise"
	// half of the paper's trade-off.
	Eps = 1.0 / 256.0
)

// FromFloat32 converts x to bfloat16 with round-to-nearest-even. Because
// bfloat16 is the top half of binary32, the conversion is a 16-bit
// truncation with carry.
func FromFloat32(x float32) BFloat16 {
	b := math.Float32bits(x)
	if b&0x7fffffff > 0x7f800000 { // NaN: keep it quiet and non-zero
		return BFloat16(b>>16) | 0x0040
	}
	// Round to nearest even on the low 16 bits; the carry naturally
	// propagates into the exponent (and to ±Inf at the very top, matching
	// IEEE overflow).
	rem := b & 0xffff
	b >>= 16
	if rem > 0x8000 || (rem == 0x8000 && b&1 == 1) {
		b++
	}
	return BFloat16(b)
}

// Float32 converts h back to float32 exactly.
func (h BFloat16) Float32() float32 {
	return math.Float32frombits(uint32(h) << 16)
}

// Round performs the round trip float32 → bfloat16 → float32.
func Round(x float32) float32 { return FromFloat32(x).Float32() }

// RoundSlice writes Round(src[i]) into dst[i]. dst and src may alias.
func RoundSlice(dst, src []float32) {
	if len(dst) != len(src) {
		panic("bf16: RoundSlice length mismatch")
	}
	for i, v := range src {
		dst[i] = Round(v)
	}
}

// RoundInPlace rounds every element of x through bfloat16.
func RoundInPlace(x []float32) { RoundSlice(x, x) }

// RoundInPlaceCount rounds every element of x through bfloat16 and reports
// how many finite elements became infinite, fusing the Overflows scan into
// the rounding pass. (bfloat16 spans the full float32 exponent range, so
// nothing can flush to zero and no underflow count is needed.)
func RoundInPlaceCount(x []float32) (overflow int64) {
	for i, v := range x {
		h := FromFloat32(v)
		x[i] = h.Float32()
		if h&0x7fff == 0x7f80 && math.Float32bits(v)&0x7fffffff < 0x7f800000 {
			overflow++
		}
	}
	return overflow
}

// IsNaN reports whether h is a NaN.
func (h BFloat16) IsNaN() bool { return h&0x7f80 == 0x7f80 && h&0x007f != 0 }

// IsInf reports whether h is ±Inf.
func (h BFloat16) IsInf() bool { return h&0x7fff == 0x7f80 }

// Overflows reports whether converting x to bfloat16 turns a finite value
// infinite. With binary32 inputs this requires |x| > ~3.39e38, i.e. only
// the top half-ulp of the float32 range — the practical reading of the
// paper's "bfloat16 is more robust".
func Overflows(x float32) bool {
	if math.IsInf(float64(x), 0) || math.IsNaN(float64(x)) {
		return false
	}
	return FromFloat32(x).IsInf()
}
