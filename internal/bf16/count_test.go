package bf16

import (
	"math"
	"math/rand"
	"testing"
)

// TestRoundInPlaceCountMatchesSeparatePasses: the fused round+count pass
// must produce exactly RoundSlice's values and an overflow tally identical
// to an Overflows scan, including at the very top of the float32 range.
func TestRoundInPlaceCountMatchesSeparatePasses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := make([]float32, 4096)
	for i := range x {
		switch rng.Intn(10) {
		case 0:
			x[i] = 3.4e38 * float32(1-2*rng.Intn(2)) // rounds past MaxValue → ±Inf
		case 1:
			x[i] = float32(math.Inf(1 - 2*rng.Intn(2))) // already infinite: not an overflow
		case 2:
			x[i] = float32(math.NaN())
		case 3:
			x[i] = float32(rng.NormFloat64()) * 1e38 // large but survives bfloat16
		default:
			x[i] = float32(rng.NormFloat64())
		}
	}
	var wantOv int64
	for _, v := range x {
		if Overflows(v) {
			wantOv++
		}
	}
	want := append([]float32(nil), x...)
	RoundInPlace(want)
	got := append([]float32(nil), x...)
	ov := RoundInPlaceCount(got)
	if ov != wantOv {
		t.Errorf("overflow count %d, want %d", ov, wantOv)
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("fused rounding differs at %d: %x vs %x (input %v)",
				i, math.Float32bits(got[i]), math.Float32bits(want[i]), x[i])
		}
	}
}
