package bf16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownConversions(t *testing.T) {
	cases := []struct {
		in   float32
		want BFloat16
	}{
		{0, 0x0000},
		{1, 0x3f80},
		{-1, 0xbf80},
		{2, 0x4000},
		{0.5, 0x3f00},
		{float32(math.Inf(1)), 0x7f80},
		{float32(math.Inf(-1)), 0xff80},
	}
	for _, c := range cases {
		if got := FromFloat32(c.in); got != c.want {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

func TestResolutionAtOne(t *testing.T) {
	// The paper: "there is no bfloat16 number between 1 and 1.0078".
	next := BFloat16(0x3f81).Float32()
	if math.Abs(float64(next)-1.0078125) > 1e-9 {
		t.Errorf("next after 1 = %v, want 1.0078125", next)
	}
	// Everything strictly between rounds to one of the two.
	mid := Round(1.003)
	if mid != 1 {
		t.Errorf("Round(1.003) = %v, want 1 (nearest)", mid)
	}
	if got := Round(1.006); got != next {
		t.Errorf("Round(1.006) = %v, want %v", got, next)
	}
}

func TestRangeVsBinary16(t *testing.T) {
	// 1e6 overflows binary16 (max 65504) but is far inside bfloat16 range.
	if Overflows(1e6) {
		t.Error("1e6 must not overflow bfloat16")
	}
	if v := FromFloat32(1e6).Float32(); math.IsInf(float64(v), 0) || math.Abs(float64(v)-1e6) > Eps*1e6 {
		t.Errorf("1e6 rounded to %v", v)
	}
	if Overflows(float32(math.Inf(1))) {
		t.Error("already-infinite input is not an overflow")
	}
	// The extreme top of float32 does overflow (above MaxValue).
	if !Overflows(float32(3.4e38)) {
		t.Error("3.4e38 should round to Inf in bfloat16")
	}
}

func TestRoundTripAllPatterns(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := BFloat16(i)
		f := h.Float32()
		if h.IsNaN() {
			if !math.IsNaN(float64(f)) {
				t.Fatalf("%#04x decoded to %v", i, f)
			}
			continue
		}
		if got := FromFloat32(f); got != h {
			t.Fatalf("round trip %#04x -> %v -> %#04x", i, f, got)
		}
	}
}

func TestTiesToEven(t *testing.T) {
	// 1 + 2^-8 is exactly between 1 (even mantissa) and 1+2^-7: down.
	if got := Round(1 + 1.0/256); got != 1 {
		t.Errorf("Round(1+2^-8) = %v, want 1", got)
	}
	// 1 + 3·2^-8 between odd and even: up to 1+2^-6... the candidates are
	// 1+2^-7 (mantissa 1, odd) and 1+2^-6 (mantissa 2, even).
	if got := Round(1 + 3.0/256); got != 1+2.0/128 {
		t.Errorf("Round(1+3·2^-8) = %v, want %v", got, 1+2.0/128)
	}
}

func TestRelativeErrorBound(t *testing.T) {
	f := func(x float32) bool {
		ax := math.Abs(float64(x))
		if ax < MinNormal || ax > MaxValue || math.IsNaN(float64(x)) {
			return true
		}
		return math.Abs(float64(Round(x))-float64(x)) <= Eps*ax*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestNaNHandling(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() || !math.IsNaN(float64(h.Float32())) {
		t.Error("NaN mishandled")
	}
}

func TestRoundSlice(t *testing.T) {
	src := []float32{1, 1.003, 1e6, -3.4e38}
	dst := make([]float32, 4)
	RoundSlice(dst, src)
	for i, v := range src {
		if dst[i] != Round(v) {
			t.Errorf("RoundSlice[%d]", i)
		}
	}
}

func TestCoarserThanBinary16(t *testing.T) {
	// bfloat16's error on 1/3 is ~8x binary16's (3 fewer mantissa bits).
	x := float32(1.0 / 3.0)
	errBF := math.Abs(float64(Round(x) - x))
	if errBF < 4e-4 || errBF > 2e-3 {
		t.Errorf("bfloat16 error on 1/3 = %g, expected ~1e-3", errBF)
	}
}
