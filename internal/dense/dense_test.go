package dense

import (
	"math"
	"testing"
)

func fill64(m *M64, f func(i, j int) float64) {
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			m.Set(i, j, f(i, j))
		}
	}
}

func TestNewAndIndexing(t *testing.T) {
	m := New[float64](3, 2)
	if m.Rows != 3 || m.Cols != 2 || m.Stride != 3 {
		t.Fatalf("bad shape %+v", m)
	}
	m.Set(2, 1, 5)
	if m.At(2, 1) != 5 || m.Data[2+1*3] != 5 {
		t.Fatal("column-major layout violated")
	}
	if got := m.Col(1)[2]; got != 5 {
		t.Fatalf("Col view wrong: %v", got)
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := New[float32](6, 6)
	v := m.View(2, 3, 3, 2)
	v.Set(0, 0, 7)
	if m.At(2, 3) != 7 {
		t.Fatal("view does not alias parent storage")
	}
	if v.At(2, 1) != m.At(4, 4) {
		t.Fatal("view offset wrong")
	}
	// Zero-size views must be constructible at the far edge.
	e := m.View(6, 6, 0, 0)
	if e.Rows != 0 || e.Cols != 0 {
		t.Fatal("empty view wrong shape")
	}
}

func TestViewBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds view must panic")
		}
	}()
	New[float64](3, 3).View(1, 1, 3, 1)
}

func TestCloneIsDeep(t *testing.T) {
	m := New[float64](4, 3)
	fill64(m, func(i, j int) float64 { return float64(i*10 + j) })
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Fatal("clone shares storage")
	}
	if !Equal(m.Clone(), m) {
		t.Fatal("clone not equal to source")
	}
}

func TestTranspose(t *testing.T) {
	m := New[float64](2, 3)
	fill64(m, func(i, j int) float64 { return float64(i + 10*j) })
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatal("transpose shape wrong")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose element (%d,%d) wrong", i, j)
			}
		}
	}
}

func TestSetIdentityAndZero(t *testing.T) {
	m := New[float32](3, 5)
	m.Set(2, 4, 9)
	m.SetIdentity()
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			want := float32(0)
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("identity(%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left nonzero data")
		}
	}
}

func TestScaleAndConversions(t *testing.T) {
	m := New[float64](2, 2)
	fill64(m, func(i, j int) float64 { return float64(i + j + 1) })
	m.Scale(2)
	if m.At(1, 1) != 6 {
		t.Fatal("scale wrong")
	}
	f32 := ToF32(m)
	back := ToF64(f32)
	if !Equal(m, back) {
		t.Fatal("f64->f32->f64 round trip lost exact small integers")
	}
}

func TestNorms(t *testing.T) {
	m := New[float64](2, 3)
	// [[1 -2 3], [4 5 -6]]
	vals := [][]float64{{1, -2, 3}, {4, 5, -6}}
	fill64(m, func(i, j int) float64 { return vals[i][j] })
	if got, want := NormOne(m), 9.0; got != want {
		t.Errorf("NormOne = %v, want %v", got, want)
	}
	if got, want := NormInf(m), 15.0; got != want {
		t.Errorf("NormInf = %v, want %v", got, want)
	}
	if got, want := NormMax(m), 6.0; got != want {
		t.Errorf("NormMax = %v, want %v", got, want)
	}
	if got, want := NormFro(m), math.Sqrt(1+4+9+16+25+36); math.Abs(got-want) > 1e-12 {
		t.Errorf("NormFro = %v, want %v", got, want)
	}
}

func TestNormFroOverflowSafety(t *testing.T) {
	m := New[float64](1, 2)
	m.Set(0, 0, 1e200)
	m.Set(0, 1, 1e200)
	want := 1e200 * math.Sqrt(2)
	if got := NormFro(m); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("NormFro overflowed: %v want %v", got, want)
	}
}

func TestNorm2EstDiagonal(t *testing.T) {
	m := New[float64](4, 4)
	for i, s := range []float64{3, 7, 2, 5} {
		m.Set(i, i, s)
	}
	if got := Norm2Est(m, 50); math.Abs(got-7) > 1e-6 {
		t.Errorf("Norm2Est(diag) = %v, want 7", got)
	}
	// Rectangular case: sigma_max of [[3,0],[0,4],[0,0]] is 4.
	r := New[float64](3, 2)
	r.Set(0, 0, 3)
	r.Set(1, 1, 4)
	if got := Norm2Est(r, 50); math.Abs(got-4) > 1e-6 {
		t.Errorf("Norm2Est(rect) = %v, want 4", got)
	}
}

func TestHasNaN(t *testing.T) {
	m := New[float32](2, 2)
	if m.HasNaN() {
		t.Fatal("zero matrix reported NaN")
	}
	m.Set(1, 0, float32(math.Inf(1)))
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
	m.Set(1, 0, float32(math.NaN()))
	if !m.HasNaN() {
		t.Fatal("NaN not detected")
	}
}

func TestNewFromColMajor(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := NewFromColMajor(2, 3, data)
	if m.At(1, 2) != 6 || m.At(0, 1) != 3 {
		t.Fatal("NewFromColMajor layout wrong")
	}
	data[0] = -1
	if m.At(0, 0) != -1 {
		t.Fatal("NewFromColMajor must not copy")
	}
}

func TestEqualShapes(t *testing.T) {
	a := New[float64](2, 2)
	b := New[float64](2, 3)
	if Equal(a, b) {
		t.Fatal("different shapes reported equal")
	}
	c := New[float64](2, 2)
	c.Set(0, 1, 1)
	if Equal(a, c) {
		t.Fatal("different contents reported equal")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := New[float64](2, 2)
	if small.String() == "" {
		t.Fatal("empty String for small matrix")
	}
	large := New[float64](100, 100)
	if got := large.String(); got != "Matrix{100x100}" {
		t.Fatalf("large matrix String = %q", got)
	}
}

func TestHash64ContentAddressing(t *testing.T) {
	a := New[float32](3, 2)
	b := New[float32](3, 2)
	if a.Hash64() != b.Hash64() {
		t.Fatal("identical matrices hash differently")
	}
	b.Set(2, 1, 1)
	if a.Hash64() == b.Hash64() {
		t.Fatal("differing contents hash equal")
	}
	// Shape participates: a 3x2 and a 2x3 of all zeros must differ.
	if New[float64](3, 2).Hash64() == New[float64](2, 3).Hash64() {
		t.Fatal("transposed shapes hash equal")
	}
	// A strided view hashes by logical content, not backing layout: a
	// submatrix must hash like a tight copy of the same values.
	big := New[float64](4, 4)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			big.Set(i, j, float64(i*4+j))
		}
	}
	view := big.View(0, 0, 3, 2)
	tight := New[float64](3, 2)
	for j := 0; j < 2; j++ {
		copy(tight.Col(j), view.Col(j))
	}
	if view.Hash64() != tight.Hash64() {
		t.Fatal("strided view hashes differently from its tight copy")
	}
	// Nil hashes like an empty matrix and must not panic.
	var nilM *Matrix[float64]
	_ = nilM.Hash64()
}
