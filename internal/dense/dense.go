// Package dense provides column-major dense matrices over float32 and
// float64, in the LAPACK storage convention: element (i, j) of a matrix M
// lives at M.Data[i+j*M.Stride]. Views share storage with their parent, so
// panel/trailing-matrix decompositions used throughout the QR algorithms are
// zero-copy.
package dense

import (
	"fmt"
	"math"
)

// Float is the scalar constraint for all generic numerical kernels in this
// repository.
type Float interface {
	~float32 | ~float64
}

// Matrix is a column-major dense matrix. The zero value is an empty matrix.
type Matrix[T Float] struct {
	Rows   int
	Cols   int
	Stride int // leading dimension; Stride >= max(1, Rows)
	Data   []T // len >= Stride*(Cols-1)+Rows for non-empty matrices
}

// M32 and M64 are the two concrete matrix types used across the repository.
type (
	M32 = Matrix[float32]
	M64 = Matrix[float64]
)

// New allocates a zeroed r×c matrix with a tight stride.
func New[T Float](r, c int) *Matrix[T] {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &Matrix[T]{Rows: r, Cols: c, Stride: max(1, r), Data: make([]T, r*c)}
}

// NewFromColMajor wraps an existing column-major slice without copying.
// The slice must hold at least r*c elements.
func NewFromColMajor[T Float](r, c int, data []T) *Matrix[T] {
	if len(data) < r*c {
		panic(fmt.Sprintf("dense: slice of %d elements cannot back a %dx%d matrix", len(data), r, c))
	}
	return &Matrix[T]{Rows: r, Cols: c, Stride: max(1, r), Data: data}
}

// At returns element (i, j).
func (m *Matrix[T]) At(i, j int) T { return m.Data[i+j*m.Stride] }

// Set assigns element (i, j).
func (m *Matrix[T]) Set(i, j int, v T) { m.Data[i+j*m.Stride] = v }

// Col returns the j-th column as a slice sharing storage.
func (m *Matrix[T]) Col(j int) []T { return m.Data[j*m.Stride : j*m.Stride+m.Rows] }

// View returns the r×c submatrix whose top-left corner is (i, j). The view
// shares storage with m.
func (m *Matrix[T]) View(i, j, r, c int) *Matrix[T] {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("dense: view [%d:%d, %d:%d] out of bounds of %dx%d", i, i+r, j, j+c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 {
		return &Matrix[T]{Rows: r, Cols: c, Stride: m.Stride}
	}
	off := i + j*m.Stride
	return &Matrix[T]{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off : off+(c-1)*m.Stride+r]}
}

// Clone returns a freshly allocated deep copy with a tight stride.
func (m *Matrix[T]) Clone() *Matrix[T] {
	n := New[T](m.Rows, m.Cols)
	n.CopyFrom(m)
	return n
}

// CopyFrom copies the contents of src into m. Shapes must match.
func (m *Matrix[T]) CopyFrom(src *Matrix[T]) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("dense: copy shape mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Zero sets every element of m to zero.
func (m *Matrix[T]) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// SetIdentity writes the identity pattern into m (works for rectangular
// matrices: ones on the main diagonal, zeros elsewhere).
func (m *Matrix[T]) SetIdentity() {
	m.Zero()
	for i := 0; i < min(m.Rows, m.Cols); i++ {
		m.Set(i, i, 1)
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix[T]) Transpose() *Matrix[T] {
	t := New[T](m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i, v := range col {
			t.Set(j, i, v)
		}
	}
	return t
}

// Scale multiplies every element of m by s in place.
func (m *Matrix[T]) Scale(s T) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] *= s
		}
	}
}

// Equal reports whether a and b have the same shape and identical elements.
func Equal[T Float](a, b *Matrix[T]) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
	}
	return true
}

// ToF64 widens a float32 matrix to float64.
func ToF64(m *M32) *M64 {
	out := New[float64](m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		src, dst := m.Col(j), out.Col(j)
		for i, v := range src {
			dst[i] = float64(v)
		}
	}
	return out
}

// ToF32 narrows a float64 matrix to float32 with default (round-to-nearest)
// conversion.
func ToF32(m *M64) *M32 {
	out := New[float32](m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		src, dst := m.Col(j), out.Col(j)
		for i, v := range src {
			dst[i] = float32(v)
		}
	}
	return out
}

// Hash64 returns a 64-bit FNV-1a hash of the matrix contents: the shape
// followed by every element in column-major order (stride padding is not
// hashed, so a view and its tight-stride clone hash identically). Elements
// are hashed through their exact float64 bit pattern, so a float32 matrix
// hashes equal to its float64 widening; callers keying caches across
// precisions must add their own type tag. A nil matrix hashes as empty.
func (m *Matrix[T]) Hash64() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	if m == nil {
		mix(0)
		mix(0)
		return h
	}
	mix(uint64(m.Rows))
	mix(uint64(m.Cols))
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			mix(math.Float64bits(float64(v)))
		}
	}
	return h
}

// HasNaN reports whether any element of m is NaN or infinite.
func (m *Matrix[T]) HasNaN() bool {
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return true
			}
		}
	}
	return false
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Matrix[T]) String() string {
	if m.Rows > 12 || m.Cols > 12 {
		return fmt.Sprintf("Matrix{%dx%d}", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% 12.5g", float64(m.At(i, j)))
		}
		s += "\n"
	}
	return s
}
