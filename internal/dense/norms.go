package dense

import "math"

// NormFro returns the Frobenius norm of m, accumulating in float64 with
// scaling to avoid overflow for large well-scaled matrices.
func NormFro[T Float](m *Matrix[T]) float64 {
	var scale, ssq float64 = 0, 1
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			x := math.Abs(float64(v))
			if x == 0 {
				continue
			}
			if scale < x {
				r := scale / x
				ssq = 1 + ssq*r*r
				scale = x
			} else {
				r := x / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormOne returns the maximum absolute column sum of m.
func NormOne[T Float](m *Matrix[T]) float64 {
	var best float64
	for j := 0; j < m.Cols; j++ {
		var s float64
		for _, v := range m.Col(j) {
			s += math.Abs(float64(v))
		}
		if s > best {
			best = s
		}
	}
	return best
}

// NormInf returns the maximum absolute row sum of m.
func NormInf[T Float](m *Matrix[T]) float64 {
	sums := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i, v := range m.Col(j) {
			sums[i] += math.Abs(float64(v))
		}
	}
	var best float64
	for _, s := range sums {
		if s > best {
			best = s
		}
	}
	return best
}

// NormMax returns the largest absolute element of m.
func NormMax[T Float](m *Matrix[T]) float64 {
	var best float64
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			x := math.Abs(float64(v))
			if x > best {
				best = x
			}
		}
	}
	return best
}

// Norm2Est estimates the spectral norm ‖m‖₂ by power iteration on mᵀm,
// accumulating in float64. iters controls the number of power steps; 30 is
// plenty for the error metrics used in the experiments (the estimate is used
// only as a normalizer).
func Norm2Est[T Float](m *Matrix[T], iters int) float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	v := make([]float64, m.Cols)
	for i := range v {
		// Deterministic, non-degenerate start vector.
		v[i] = 1 + 1/float64(i+2)
	}
	u := make([]float64, m.Rows)
	var sigma float64
	for it := 0; it < iters; it++ {
		// u = M v
		for i := range u {
			u[i] = 0
		}
		for j := 0; j < m.Cols; j++ {
			vj := v[j]
			if vj == 0 {
				continue
			}
			col := m.Col(j)
			for i, a := range col {
				u[i] += float64(a) * vj
			}
		}
		nu := nrm2(u)
		if nu == 0 {
			return 0
		}
		for i := range u {
			u[i] /= nu
		}
		// v = Mᵀ u
		for j := 0; j < m.Cols; j++ {
			col := m.Col(j)
			var s float64
			for i, a := range col {
				s += float64(a) * u[i]
			}
			v[j] = s
		}
		sigma = nrm2(v)
		if sigma == 0 {
			return 0
		}
		for i := range v {
			v[i] /= sigma
		}
	}
	return sigma
}

func nrm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
