package gram

import (
	"fmt"
	"math"
	"sync"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/hazard"
	"tcqr/internal/tcsim"
)

// Tile geometry of the paper's CUDA kernel: each threadblock owns a 256×32
// tile held entirely in shared memory.
const (
	// TileRows is the number of rows one simulated threadblock factorizes.
	TileRows = 256
	// TileCols is the fixed CAQR panel width.
	TileCols = 32
)

// Panel is a QR factorizer for tall panels (m >= n). Factor returns a fresh
// orthonormal Q (m×n) and upper-triangular R (n×n); the input is not
// modified. Implementations are the subject of the Figure 6 panel ablation.
//
// Factor reports numerical breakdown — a zero or linearly dependent column,
// a non-SPD Gram matrix, a non-finite factor — as an error wrapping
// hazard.ErrBreakdown instead of returning a corrupt factorization. The
// Ladder panel turns such errors into escalation along a chain of
// progressively more robust factorizers.
type Panel interface {
	Factor(a *dense.M32) (q, r *dense.M32, err error)
	Name() string
}

// checkFullRank validates the factor a Gram-Schmidt-family panel produced:
// every diagonal entry of R must be finite and nonzero. A zero diagonal is
// how MGS/CGS surface a zero or linearly dependent column (the tile tree
// inherits the property: a dependent column zeroes the stacked-R diagonal at
// some tree level and the zero propagates to the root). The returned errors
// wrap hazard.ErrBreakdown.
func checkFullRank(name string, r *dense.M32) error {
	for j := 0; j < r.Cols; j++ {
		d := r.At(j, j)
		if math.IsNaN(float64(d)) || math.IsInf(float64(d), 0) {
			return fmt.Errorf("gram: %s: non-finite R(%d,%d) = %v: %w", name, j, j, d, hazard.ErrBreakdown)
		}
		if d == 0 {
			return fmt.Errorf("gram: %s: column %d is numerically zero or linearly dependent: %w", name, j, hazard.ErrBreakdown)
		}
	}
	return nil
}

// checkFinite validates a factor from a breakdown-free algorithm
// (Householder): the factors must be finite, but a zero R diagonal is
// acceptable — Householder QR of a rank-deficient panel still yields an
// orthonormal Q and a valid R.
func checkFinite(name string, q, r *dense.M32) error {
	if !hazard.MatrixFinite(r) || !hazard.MatrixFinite(q) {
		return fmt.Errorf("gram: %s: non-finite factor: %w", name, hazard.ErrBreakdown)
	}
	return nil
}

// CAQRPanel is the communication-avoiding Gram-Schmidt panel of Section
// 3.1.3. Panels wider than TileCols are reduced by the same
// split-project-update recursion as the outer algorithm (with GEMMs through
// Engine), and width-TileCols panels run the tile tree of Eq. 8.
type CAQRPanel struct {
	// Engine performs the panel's matrix multiplications. The paper keeps
	// TensorCore OFF in the panel ("little gain in speed" for a loss of
	// accuracy — Figure 7); a nil Engine defaults to FP32 accordingly.
	Engine tcsim.Engine
	// RowBlock overrides TileRows (for tests); 0 uses TileRows.
	RowBlock int
}

// Name implements Panel: "CAQR", engine-qualified when the ablation routes
// the panel's GEMMs through a neural engine, so ladder escalation events
// distinguish the TensorCore, error-corrected, and fp32 CAQR rungs.
func (p *CAQRPanel) Name() string {
	if p.Engine == nil {
		return "CAQR"
	}
	return "CAQR[" + p.Engine.Name() + "]"
}

func (p *CAQRPanel) engine() tcsim.Engine {
	if p.Engine != nil {
		return p.Engine
	}
	return defaultFP32
}

var defaultFP32 = &tcsim.FP32{}

func (p *CAQRPanel) rowBlock() int {
	if p.RowBlock > 0 {
		return p.RowBlock
	}
	return TileRows
}

// Factor implements Panel. Breakdown — a zero or dependent column anywhere
// in the tile tree, or a non-finite factor — is reported as an error
// wrapping hazard.ErrBreakdown.
func (p *CAQRPanel) Factor(a *dense.M32) (q, r *dense.M32, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, nil, fmt.Errorf("gram: CAQR panel requires m >= n, got %dx%d: %w", m, n, hazard.ErrShape)
	}
	q = a.Clone()
	r = dense.New[float32](n, n)
	p.factorInPlace(q, r)
	if err := checkFullRank("CAQR", r); err != nil {
		return nil, nil, err
	}
	return q, r, nil
}

// factorInPlace turns w into Q and fills r (n×n, pre-zeroed upper written).
func (p *CAQRPanel) factorInPlace(w, r *dense.M32) {
	n := w.Cols
	if n <= TileCols {
		p.tileTree(w, r)
		return
	}
	// Width reduction by the recursive Gram-Schmidt split, mirroring the
	// outer RGSQRF but with the panel's own (FP32 by default) engine.
	h := n / 2
	m := w.Rows
	w1 := w.View(0, 0, m, h)
	w2 := w.View(0, h, m, n-h)
	r11 := r.View(0, 0, h, h)
	r12 := r.View(0, h, h, n-h)
	r22 := r.View(h, h, n-h, n-h)
	p.factorInPlace(w1, r11)
	e := p.engine()
	e.Gemm(blas.Trans, blas.NoTrans, 1, w1, w2, 0, r12)
	e.Gemm(blas.NoTrans, blas.NoTrans, -1, w1, r12, 1, w2)
	p.factorInPlace(w2, r22)
}

// tileTree runs the Eq. 8 pipeline on a width ≤ TileCols panel:
//
//  1. split the rows into tiles and MGS-factor each tile concurrently
//     (threadblocks in shared memory);
//  2. stack the tile R factors;
//  3. recurse on the stack until it fits in one tile;
//  4. apply the recursion's Q to each tile's Q with a batched GEMM;
//  5. reinterpret the result as the panel's QR.
func (p *CAQRPanel) tileTree(w, r *dense.M32) {
	m, n := w.Rows, w.Cols
	rb := p.rowBlock()
	if rb < n {
		rb = n
	}
	if m <= rb+n {
		// Base case: a single threadblock suffices (the paper recurses
		// "until the number of rows is below 256").
		MGS(w, r)
		return
	}
	// Step 1: tile boundaries. Every tile gets rb rows; the remainder is
	// folded into the last tile so every tile has at least rb rows.
	nt := m / rb
	bounds := make([]int, nt+1)
	for i := 0; i < nt; i++ {
		bounds[i] = i * rb
	}
	bounds[nt] = m

	tileQ := make([]*dense.M32, nt)
	stack := dense.New[float32](nt*n, n) // step 2: stacked R factors
	var wg sync.WaitGroup
	for i := 0; i < nt; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tile := w.View(bounds[i], 0, bounds[i+1]-bounds[i], n)
			ri := stack.View(i*n, 0, n, n)
			MGS(tile, ri) // tile becomes Q_i in place
			tileQ[i] = tile
		}(i)
	}
	wg.Wait()

	// Step 3: recurse on the stacked R factors.
	q2 := stack.Clone()
	rTop := dense.New[float32](n, n)
	p.tileTree(q2, rTop)
	r.CopyFrom(rTop)

	// Step 4: batched GEMM Q_i ← Q_i · Q2_i. The multiplication cannot run
	// in place, so stage each tile product in a scratch buffer.
	q2Blocks := make([]*dense.M32, nt)
	scratch := make([]*dense.M32, nt)
	for i := 0; i < nt; i++ {
		q2Blocks[i] = q2.View(i*n, 0, n, n)
		scratch[i] = dense.New[float32](tileQ[i].Rows, n)
	}
	if e := p.engine(); e == defaultFP32 {
		// The common path is exactly cuBLAS batched SGEMM.
		blas.GemmBatch(blas.NoTrans, blas.NoTrans, 1, tileQ, q2Blocks, 0, scratch)
	} else {
		// Ablation path (TensorCore in the panel): the batch runs through
		// the configured engine, one concurrent GEMM per tile.
		var bw sync.WaitGroup
		for i := 0; i < nt; i++ {
			bw.Add(1)
			go func(i int) {
				defer bw.Done()
				e.Gemm(blas.NoTrans, blas.NoTrans, 1, tileQ[i], q2Blocks[i], 0, scratch[i])
			}(i)
		}
		bw.Wait()
	}
	for i := 0; i < nt; i++ {
		tileQ[i].CopyFrom(scratch[i]) // step 5: w now holds the panel Q
	}
}

// HouseholderPanel adapts blocked Householder QR (the cuSOLVER SGEQRF
// baseline) to the Panel interface — the right bar of Figure 6.
type HouseholderPanel struct {
	// NB is the Householder block size; 0 uses the package default.
	NB int
}

// Name implements Panel.
func (p *HouseholderPanel) Name() string { return "SGEQRF" }

// Factor implements Panel. Householder QR has no Gram-Schmidt breakdown
// mode — a rank-deficient panel still yields an orthonormal Q — so it is
// the terminal rung of the fallback ladder; only non-finite factors are
// rejected.
func (p *HouseholderPanel) Factor(a *dense.M32) (q, r *dense.M32, err error) {
	qr := housePanelFactor(a, p.NB)
	if err := checkFinite("SGEQRF", qr.q, qr.r); err != nil {
		return nil, nil, err
	}
	return qr.q, qr.r, nil
}

// MGSPanel is the plain single-tile modified Gram-Schmidt panel, included
// as the simplest baseline and for the §3.6 error comparisons.
type MGSPanel struct{}

// Name implements Panel.
func (MGSPanel) Name() string { return "MGS" }

// Factor implements Panel.
func (MGSPanel) Factor(a *dense.M32) (q, r *dense.M32, err error) {
	q = a.Clone()
	r = dense.New[float32](a.Cols, a.Cols)
	MGS(q, r)
	if err := checkFullRank("MGS", r); err != nil {
		return nil, nil, err
	}
	return q, r, nil
}

// CGSPanel is the classical Gram-Schmidt panel (worst-case orthogonality
// ∝ κ², per Giraud et al. as cited in §3.6).
type CGSPanel struct{}

// Name implements Panel.
func (CGSPanel) Name() string { return "CGS" }

// Factor implements Panel.
func (CGSPanel) Factor(a *dense.M32) (q, r *dense.M32, err error) {
	q = a.Clone()
	r = dense.New[float32](a.Cols, a.Cols)
	CGS(q, r)
	if err := checkFullRank("CGS", r); err != nil {
		return nil, nil, err
	}
	return q, r, nil
}
