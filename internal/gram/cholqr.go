package gram

import (
	"fmt"

	"tcqr/internal/blas"
	"tcqr/internal/chol"
	"tcqr/internal/dense"
	"tcqr/internal/hazard"
	"tcqr/internal/tcsim"
)

// CholQR computes a QR factorization via the Gram matrix: G = AᵀA,
// G = RᵀR (Cholesky), Q = A·R⁻¹. This is the mixed-precision CholeskyQR
// family the paper discusses as related work (Yamazaki, Tomov & Dongarra
// [28]): it runs almost entirely in BLAS-3 — even more GEMM-friendly than
// RGSQRF — but forming AᵀA squares the condition number, so its
// orthogonality error grows as κ(A)² and the Cholesky itself breaks down
// once κ(A)² overwhelms the working precision. The paper's contrast: "our
// method doesn't seem to double the condition number of the input matrix."
//
// The input is not modified. Returns an error when the Gram matrix is not
// numerically positive definite.
func CholQR(a *dense.M32) (q, r *dense.M32, err error) {
	return cholQRWith(a, nil)
}

// cholQRWith is CholQR with the Gram matrix optionally formed on a neural
// engine: e == nil keeps the historical bit-exact fp32 Syrk; otherwise
// G = AᵀA runs through e (a full GEMM rather than the symmetric rank-k
// update — the engines only speak GEMM, and Potrf reads the lower triangle
// either way). Forming the Gram matrix is where CholQR concentrates its
// precision demand (κ² in the working precision), so this is exactly the
// spot where the engine choice decides the breakdown threshold: κ ≲ 2^5.5
// on the fp16 TensorCore, fp32-grade on tc-ec.
func cholQRWith(a *dense.M32, e tcsim.Engine) (q, r *dense.M32, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, nil, fmt.Errorf("gram: CholQR requires m >= n, got %dx%d", m, n)
	}
	g := dense.New[float32](n, n)
	if e != nil {
		e.Gemm(blas.Trans, blas.NoTrans, 1, a, a, 0, g)
	} else {
		blas.Syrk(blas.Lower, blas.Trans, 1, a, 0, g)
	}
	// Cholesky gives G = L·Lᵀ; R = Lᵀ. A non-SPD Gram matrix is the CholQR
	// breakdown mode (κ² overwhelmed float32, or the panel is rank
	// deficient); report it as a typed breakdown so the fallback ladder can
	// escalate.
	if err := chol.Potrf(g); err != nil {
		return nil, nil, fmt.Errorf("gram: CholQR: Gram matrix not SPD (κ² too large for float32, or rank deficient): %v: %w", err, hazard.ErrBreakdown)
	}
	r = dense.New[float32](n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			r.Set(i, j, g.At(j, i)) // transpose the lower factor
		}
	}
	// Q = A·R⁻¹ (right triangular solve).
	q = a.Clone()
	blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, r, q)
	return q, r, nil
}

// CholQR2 is CholQR followed by a second pass on Q (the standard fix that
// restores orthogonality when the first pass survives): A = Q₁R₁,
// Q₁ = Q₂R₂ ⇒ A = Q₂(R₂R₁).
func CholQR2(a *dense.M32) (q, r *dense.M32, err error) {
	q1, r1, err := CholQR(a)
	if err != nil {
		return nil, nil, err
	}
	q, r2, err := CholQR(q1)
	if err != nil {
		return nil, nil, err
	}
	r = dense.New[float32](r1.Rows, r1.Cols)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, r2, r1, 0, r)
	return q, r, nil
}

// CholQRPanel adapts CholQR to the Panel interface for ablations. Cholesky
// breakdown surfaces as an error wrapping hazard.ErrBreakdown, which the
// fallback ladder escalates — through the error-corrected engine rung when
// the panel carried a plain TensorCore — to CholQR2 → MGS → Householder.
type CholQRPanel struct {
	// Engine forms the Gram matrix G = AᵀA. CholQR is the panel where the
	// engine's precision bites hardest — breakdown at κ(A)² · u_engine ≳ 1 —
	// so this is the knob the TensorCoreInPanel ablation and the tc-ec
	// accuracy-recovery rung turn. A nil Engine keeps the historical plain
	// fp32 Syrk (the zero value is unchanged).
	Engine tcsim.Engine
}

// Name implements Panel.
func (p CholQRPanel) Name() string {
	if p.Engine == nil {
		return "CholQR"
	}
	return "CholQR[" + p.Engine.Name() + "]"
}

// Factor implements Panel.
func (p CholQRPanel) Factor(a *dense.M32) (q, r *dense.M32, err error) {
	q, r, err = cholQRWith(a, p.Engine)
	if err != nil {
		return nil, nil, err
	}
	if err := checkFullRank("CholQR", r); err != nil {
		return nil, nil, err
	}
	return q, r, nil
}

// CholQR2Panel adapts CholQR2 — CholeskyQR with the orthogonality-restoring
// second pass — to the Panel interface. It is the second rung of the panel
// fallback ladder: when plain CholQR survives but its Q has lost
// orthogonality, the second pass restores it to working precision.
type CholQR2Panel struct{}

// Name implements Panel.
func (CholQR2Panel) Name() string { return "CholQR2" }

// Factor implements Panel.
func (CholQR2Panel) Factor(a *dense.M32) (q, r *dense.M32, err error) {
	q, r, err = CholQR2(a)
	if err != nil {
		return nil, nil, err
	}
	if err := checkFullRank("CholQR2", r); err != nil {
		return nil, nil, err
	}
	return q, r, nil
}
