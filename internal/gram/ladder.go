package gram

import (
	"fmt"
	"strings"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/faultinject"
	"tcqr/internal/hazard"
	"tcqr/internal/tcsim"
)

// Ladder is a Panel that tries a chain of factorizers in order, escalating
// to the next rung when one breaks down. It implements the panel half of
// the fallback ladder: CholQR → CholQR2 → MGS → Householder, with CAQR
// slotting in ahead of MGS when it is the selected algorithm. Every
// breakdown and escalation is recorded in Report, so the caller can see
// which path actually produced the factorization.
type Ladder struct {
	// Rungs are tried first to last. The last rung's error, if any, is
	// returned.
	Rungs []Panel
	// Report receives one event per breakdown (nil disables recording).
	Report *hazard.Report
	// Tol, when positive, is the backward-error quality gate applied to
	// engine-bearing rungs: a panel whose ‖A − QR‖_F/‖A‖_F exceeds Tol is
	// treated as a precision-loss hazard and escalated, exactly like a
	// breakdown. This is what makes "equal backward error" a property the
	// ladder enforces rather than hopes for: a plain-fp16 panel sits at its
	// ~2⁻¹¹ error floor and always trips an fp32-grade gate, the
	// error-corrected rung clears it by ~two orders of magnitude.
	// Engine-less (fp32) rungs are never gated — they are the floor the
	// gate is calibrated against. Zero disables the gate (the historical
	// behaviour, and the ablation paths' requirement).
	Tol float64
}

// DefaultPanelTol is the quality gate NewLadder installs when the ladder
// carries an error-corrected rung. Calibration (see the tc-ec battery):
// plain-TC CAQR panels measure ~3–5·10⁻⁴ backward error at every paper
// shape, tc-ec and fp32 panels ~1.5·10⁻⁷ — this gate sits ≥30× from both
// populations.
const DefaultPanelTol = 1e-5

// NewLadder builds the escalation ladder starting at first: the standard
// rungs (CholQR2, MGS, Householder) that are strictly more robust than
// first are appended after it. A Householder start has no rungs above it.
//
// When first runs its GEMMs on a plain fp16 TensorCore, the same panel on
// the error-corrected engine (tc-ec, Ootomo–Yokota) is inserted directly
// after it: a precision-driven breakdown — κ(A)²·2⁻¹¹ ≳ 1 collapsing the
// Gram matrix, a dependent column the fp16 rounding manufactured — then
// recovers at fp32-grade accuracy while staying on the tensor-core
// simulant, instead of paying the full fp32 panel fallback.
func NewLadder(first Panel, report *hazard.Report) *Ladder {
	l := &Ladder{Rungs: []Panel{first}, Report: report}
	if ec, ok := errorCorrectedRung(first); ok {
		l.Rungs = append(l.Rungs, ec)
		l.Tol = DefaultPanelTol
	}
	switch first.(type) {
	case CholQRPanel, *CholQRPanel:
		l.Rungs = append(l.Rungs, CholQR2Panel{}, MGSPanel{}, &HouseholderPanel{})
	case CholQR2Panel, *CholQR2Panel:
		l.Rungs = append(l.Rungs, MGSPanel{}, &HouseholderPanel{})
	case *HouseholderPanel:
		// Terminal algorithm; nothing more robust to escalate to.
	default: // CAQR, MGS, CGS and any external panel
		l.Rungs = append(l.Rungs, MGSPanel{}, &HouseholderPanel{})
	}
	return l
}

// errorCorrectedRung returns a copy of first with its engine upgraded to
// the error-corrected TensorCore, for the panels that carry an engine and
// whose engine has a corrected counterpart (tcsim.ErrorCorrected — today,
// exactly the plain fp16 TensorCore). Everything else has no such rung:
// fp32 panels cannot be made more accurate by it, and a bf16/tc-ec first
// rung is already past it on the ladder.
// panelEngine reports the neural engine a rung runs its GEMMs on, nil for
// the pure-fp32 panels (which the quality gate therefore never judges).
func panelEngine(p Panel) tcsim.Engine {
	switch p := p.(type) {
	case *CAQRPanel:
		return p.Engine
	case CholQRPanel:
		return p.Engine
	case *CholQRPanel:
		return p.Engine
	}
	return nil
}

func errorCorrectedRung(first Panel) (Panel, bool) {
	switch p := first.(type) {
	case *CAQRPanel:
		if ec, ok := tcsim.ErrorCorrected(p.Engine); ok {
			return &CAQRPanel{Engine: ec, RowBlock: p.RowBlock}, true
		}
	case CholQRPanel:
		if ec, ok := tcsim.ErrorCorrected(p.Engine); ok {
			return CholQRPanel{Engine: ec}, true
		}
	case *CholQRPanel:
		if ec, ok := tcsim.ErrorCorrected(p.Engine); ok {
			return &CholQRPanel{Engine: ec}, true
		}
	}
	return nil, false
}

// Name implements Panel.
func (l *Ladder) Name() string {
	names := make([]string, len(l.Rungs))
	for i, p := range l.Rungs {
		names[i] = p.Name()
	}
	return "ladder(" + strings.Join(names, "->") + ")"
}

// Factor implements Panel: the first rung that factors a cleanly wins.
func (l *Ladder) Factor(a *dense.M32) (q, r *dense.M32, err error) {
	if len(l.Rungs) == 0 {
		return nil, nil, fmt.Errorf("gram: empty ladder: %w", hazard.ErrBreakdown)
	}
	for i, p := range l.Rungs {
		q, r, err = p.Factor(a)
		// Failpoint: an injected error forces this rung to report breakdown
		// even when it factored cleanly, driving the escalation path on
		// matrices that would not trip it naturally.
		if err == nil {
			if ferr := faultinject.Fire("gram.ladder.rung"); ferr != nil {
				err = fmt.Errorf("gram: injected rung failure: %v: %w", ferr, hazard.ErrBreakdown)
			}
		}
		kind := hazard.KindBreakdown
		// Quality gate: an engine-bearing rung must also deliver the
		// backward error the gate demands; half-precision arithmetic at its
		// error floor escalates as a precision-loss hazard.
		if err == nil && l.Tol > 0 && panelEngine(p) != nil {
			if be := accuracy.BackwardError(a, q, r); be > l.Tol {
				kind = hazard.KindPrecisionLoss
				err = fmt.Errorf("gram: %s backward error %.2e exceeds the %.0e quality gate: %w",
					p.Name(), be, l.Tol, hazard.ErrPrecisionLoss)
			}
		}
		if err == nil {
			return q, r, nil
		}
		action := "fail"
		if i+1 < len(l.Rungs) {
			action = "escalate to " + l.Rungs[i+1].Name()
		}
		l.Report.Record(hazard.Event{
			Kind:   kind,
			Stage:  "panel",
			Detail: fmt.Sprintf("%s on %dx%d panel: %v", p.Name(), a.Rows, a.Cols, err),
			Action: action,
		})
	}
	return nil, nil, fmt.Errorf("gram: every ladder rung failed, last (%s): %w", l.Rungs[len(l.Rungs)-1].Name(), err)
}
