package gram

import (
	"fmt"
	"strings"

	"tcqr/internal/dense"
	"tcqr/internal/faultinject"
	"tcqr/internal/hazard"
)

// Ladder is a Panel that tries a chain of factorizers in order, escalating
// to the next rung when one breaks down. It implements the panel half of
// the fallback ladder: CholQR → CholQR2 → MGS → Householder, with CAQR
// slotting in ahead of MGS when it is the selected algorithm. Every
// breakdown and escalation is recorded in Report, so the caller can see
// which path actually produced the factorization.
type Ladder struct {
	// Rungs are tried first to last. The last rung's error, if any, is
	// returned.
	Rungs []Panel
	// Report receives one event per breakdown (nil disables recording).
	Report *hazard.Report
}

// NewLadder builds the escalation ladder starting at first: the standard
// rungs (CholQR2, MGS, Householder) that are strictly more robust than
// first are appended after it. A Householder start has no rungs above it.
func NewLadder(first Panel, report *hazard.Report) *Ladder {
	l := &Ladder{Rungs: []Panel{first}, Report: report}
	switch first.(type) {
	case CholQRPanel, *CholQRPanel:
		l.Rungs = append(l.Rungs, CholQR2Panel{}, MGSPanel{}, &HouseholderPanel{})
	case CholQR2Panel, *CholQR2Panel:
		l.Rungs = append(l.Rungs, MGSPanel{}, &HouseholderPanel{})
	case *HouseholderPanel:
		// Terminal algorithm; nothing more robust to escalate to.
	default: // CAQR, MGS, CGS and any external panel
		l.Rungs = append(l.Rungs, MGSPanel{}, &HouseholderPanel{})
	}
	return l
}

// Name implements Panel.
func (l *Ladder) Name() string {
	names := make([]string, len(l.Rungs))
	for i, p := range l.Rungs {
		names[i] = p.Name()
	}
	return "ladder(" + strings.Join(names, "->") + ")"
}

// Factor implements Panel: the first rung that factors a cleanly wins.
func (l *Ladder) Factor(a *dense.M32) (q, r *dense.M32, err error) {
	if len(l.Rungs) == 0 {
		return nil, nil, fmt.Errorf("gram: empty ladder: %w", hazard.ErrBreakdown)
	}
	for i, p := range l.Rungs {
		q, r, err = p.Factor(a)
		// Failpoint: an injected error forces this rung to report breakdown
		// even when it factored cleanly, driving the escalation path on
		// matrices that would not trip it naturally.
		if err == nil {
			if ferr := faultinject.Fire("gram.ladder.rung"); ferr != nil {
				err = fmt.Errorf("gram: injected rung failure: %v: %w", ferr, hazard.ErrBreakdown)
			}
		}
		if err == nil {
			return q, r, nil
		}
		action := "fail"
		if i+1 < len(l.Rungs) {
			action = "escalate to " + l.Rungs[i+1].Name()
		}
		l.Report.Record(hazard.Event{
			Kind:   hazard.KindBreakdown,
			Stage:  "panel",
			Detail: fmt.Sprintf("%s on %dx%d panel: %v", p.Name(), a.Rows, a.Cols, err),
			Action: action,
		})
	}
	return nil, nil, fmt.Errorf("gram: every ladder rung failed, last (%s): %w", l.Rungs[len(l.Rungs)-1].Name(), err)
}
