// Package gram implements the Gram-Schmidt orthogonalization kernels and
// the communication-avoiding QR (CAQR) panel factorization of Section 3.1.3
// of the paper, plus the Panel abstraction that lets the recursive QR choose
// its panel algorithm (the Figure 6 ablation: CAQR panel vs SGEQRF panel).
//
// On the GPU, the paper maps one 256×32 tile to one threadblock whose 256
// threads each own a row, runs the modified Gram-Schmidt entirely in shared
// memory (Algorithm 2), reduces the stacked R factors in a log₈(m/256)
// tree, and recovers the tile Q factors with one batched SGEMM (Eq. 8). The
// simulator preserves that structure: tiles are factored by concurrent
// goroutines (the threadblocks), the R tree is reduced recursively, and the
// Q assembly goes through the batched GEMM of the compute engine, so the
// communication pattern being modelled — one global-memory pass per tree
// level, synchronization only at the batched GEMM — is visible in the code.
package gram

import (
	"fmt"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// MGS computes the modified Gram-Schmidt QR of a (m×n, m >= n) in place:
// on return a holds the orthonormal Q and r holds the upper-triangular R
// (r must be n×n; its strict lower triangle is zeroed). This is Algorithm 2
// of the paper, with the inner products of line 7 aggregated into a GEMV
// exactly like the CUDA kernel aggregates them into threadblock reductions.
//
// A numerically zero column yields a zero diagonal entry in R and a zero
// column in Q; callers that can encounter rank deficiency must check.
func MGS[T dense.Float](a *dense.Matrix[T], r *dense.Matrix[T]) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("gram: MGS requires m >= n, got %dx%d", m, n))
	}
	if r.Rows != n || r.Cols != n {
		panic("gram: MGS R must be n×n")
	}
	r.Zero()
	for k := 0; k < n; k++ {
		qk := a.Col(k)
		nrm := blas.Nrm2(qk)
		r.Set(k, k, nrm)
		if nrm == 0 {
			continue
		}
		blas.Scal(1/nrm, qk)
		if k == n-1 {
			break
		}
		trail := a.View(0, k+1, m, n-k-1)
		// R(k, k+1:n) = qkᵀ · A(:, k+1:n); A(:, k+1:n) -= qk · R(k, k+1:n).
		row := make([]T, n-k-1)
		blas.Gemv(blas.Trans, 1, trail, qk, 0, row)
		for j, v := range row {
			r.Set(k, k+1+j, v)
		}
		blas.Ger(-1, qk, row, trail)
	}
}

// CGS computes the classical Gram-Schmidt QR of a in place. It is included
// for the Section 3.6 error-bound comparison: CGS loses orthogonality as
// κ(A)², MGS only as κ(A), and the recursive algorithm sits between the two.
func CGS[T dense.Float](a *dense.Matrix[T], r *dense.Matrix[T]) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("gram: CGS requires m >= n, got %dx%d", m, n))
	}
	if r.Rows != n || r.Cols != n {
		panic("gram: CGS R must be n×n")
	}
	r.Zero()
	for k := 0; k < n; k++ {
		ak := a.Col(k)
		if k > 0 {
			// R(0:k, k) = Q(:, 0:k)ᵀ·a_k, then a_k -= Q(:, 0:k)·R(0:k, k),
			// both against the ORIGINAL a_k (that is what makes it CGS).
			head := a.View(0, 0, m, k)
			rk := r.Col(k)[:k]
			blas.Gemv(blas.Trans, 1, head, ak, 0, rk)
			blas.Gemv(blas.NoTrans, -1, head, rk, 1, ak)
		}
		nrm := blas.Nrm2(ak)
		r.Set(k, k, nrm)
		if nrm != 0 {
			blas.Scal(1/nrm, ak)
		}
	}
}
