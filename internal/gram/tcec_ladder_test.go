package gram

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/hazard"
	"tcqr/internal/matgen"
	"tcqr/internal/tcsim"
)

// TestLadderInsertsErrorCorrectedRung pins the ladder shapes: a plain-TC
// engine-bearing first rung gets its tc-ec twin directly after it (and the
// quality gate armed); everything else keeps the historical ladder.
func TestLadderInsertsErrorCorrectedRung(t *testing.T) {
	tc := &tcsim.TensorCore{TrackSpecials: true}
	cases := []struct {
		first Panel
		want  string
		tol   float64
	}{
		{&CAQRPanel{Engine: tc}, "ladder(CAQR[TC-GEMM]->CAQR[TCEC-GEMM]->MGS->SGEQRF)", DefaultPanelTol},
		{CholQRPanel{Engine: tc}, "ladder(CholQR[TC-GEMM]->CholQR[TCEC-GEMM]->CholQR2->MGS->SGEQRF)", DefaultPanelTol},
		{&CAQRPanel{}, "ladder(CAQR->MGS->SGEQRF)", 0},
		{CholQRPanel{}, "ladder(CholQR->CholQR2->MGS->SGEQRF)", 0},
		{&CAQRPanel{Engine: &tcsim.BFloat16{}}, "ladder(CAQR[BF16-GEMM]->MGS->SGEQRF)", 0},
		{&CAQRPanel{Engine: &tcsim.TCEC{}}, "ladder(CAQR[TCEC-GEMM]->MGS->SGEQRF)", 0},
		{&HouseholderPanel{}, "ladder(SGEQRF)", 0},
	}
	for _, c := range cases {
		l := NewLadder(c.first, nil)
		if got := l.Name(); got != c.want {
			t.Errorf("NewLadder(%s) = %s, want %s", c.first.Name(), got, c.want)
		}
		if l.Tol != c.tol {
			t.Errorf("NewLadder(%s).Tol = %g, want %g", c.first.Name(), l.Tol, c.tol)
		}
	}
}

// TestLadderQualityGateRecoversOnTcEc is the gram half of the escalation
// battery: a wide CAQR panel on the plain fp16 TensorCore lands at its
// ~2⁻¹¹ backward-error floor, trips the quality gate, and must recover on
// the tc-ec rung — one precision-loss event, no fp32 panel involved —
// delivering the same backward error as the all-fp32 ladder.
func TestLadderQualityGateRecoversOnTcEc(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := dense.ToF32(matgen.WithCond(rng, 512, 64, 100, matgen.Geometric))

	rep := &hazard.Report{}
	l := NewLadder(&CAQRPanel{Engine: &tcsim.TensorCore{}, RowBlock: 128}, rep)
	q, r, err := l.Factor(a)
	if err != nil {
		t.Fatalf("ladder failed: %v", err)
	}
	be := accuracy.BackwardError(a, q, r)
	if be > DefaultPanelTol {
		t.Fatalf("recovered backward error %g still above the gate %g", be, DefaultPanelTol)
	}
	events := rep.Events()
	if len(events) != 1 {
		t.Fatalf("want exactly one escalation event, got %d: %+v", len(events), events)
	}
	ev := events[0]
	if ev.Kind != hazard.KindPrecisionLoss {
		t.Errorf("event kind = %v, want precision-loss", ev.Kind)
	}
	if !strings.Contains(ev.Action, "CAQR[TCEC-GEMM]") {
		t.Errorf("event action %q should escalate to the tc-ec rung", ev.Action)
	}
	if strings.Contains(ev.Action, "MGS") || strings.Contains(ev.Action, "SGEQRF") {
		t.Errorf("event action %q reached an fp32 panel", ev.Action)
	}

	// The tc-only baseline (the pre-tc-ec ladder shape) pays the fp32
	// fallback for the same matrix and the same achieved backward error.
	repBase := &hazard.Report{}
	base := &Ladder{
		Rungs:  []Panel{&CAQRPanel{Engine: &tcsim.TensorCore{}, RowBlock: 128}, MGSPanel{}, &HouseholderPanel{}},
		Report: repBase,
		Tol:    DefaultPanelTol,
	}
	qb, rb, err := base.Factor(a)
	if err != nil {
		t.Fatalf("baseline ladder failed: %v", err)
	}
	beBase := accuracy.BackwardError(a, qb, rb)
	if beBase > DefaultPanelTol {
		t.Fatalf("baseline backward error %g above the gate", beBase)
	}
	if len(repBase.Events()) == 0 || !strings.Contains(repBase.Events()[0].Action, "MGS") {
		t.Fatalf("baseline should have escalated to the fp32 MGS panel: %+v", repBase.Events())
	}
	// Equal backward error (same order), strictly fewer fp32 escalations
	// (zero vs one) — the acceptance property, at panel granularity.
	if be > 4*beBase && beBase > 4*be {
		t.Errorf("recovered errors should be comparable: tc-ec ladder %g vs fp32 fallback %g", be, beBase)
	}
}

// TestLadderGateSkipsEnginelessRungs: precision-loss never fires on fp32
// rungs even with the gate armed — they are the calibration floor.
func TestLadderGateSkipsEnginelessRungs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := dense.ToF32(matgen.WithCond(rng, 256, 32, 10, matgen.Geometric))
	rep := &hazard.Report{}
	l := &Ladder{Rungs: []Panel{MGSPanel{}}, Report: rep, Tol: 1e-300}
	if _, _, err := l.Factor(a); err != nil {
		t.Fatalf("engine-less rung must not be gated: %v", err)
	}
	if n := len(rep.Events()); n != 0 {
		t.Fatalf("no events expected, got %d", n)
	}
}

// TestCholQREngineAblation pins the engine-aware Gram path: the fp32 and
// nil-engine panels agree bit-for-bit with the historical Syrk only in
// name — numerically both factor cleanly — while a tc-ec Gram stays within
// fp32-grade backward error and the ladder's precision classification
// reaches CholQR through errors.Is.
func TestCholQREngineAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := dense.ToF32(matgen.WithCond(rng, 384, 24, 50, matgen.Geometric))
	for _, p := range []CholQRPanel{{}, {Engine: &tcsim.TCEC{}}, {Engine: &tcsim.TensorCore{}}} {
		q, r, err := p.Factor(a)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if be := accuracy.BackwardError(a, q, r); be > 1e-5 {
			// CholQR's Q is A·R⁻¹, so backward error stays small for every
			// engine; the engines differ in orthogonality, judged elsewhere.
			t.Errorf("%s backward error %g", p.Name(), be)
		}
	}
	// A rank-deficient panel still surfaces the typed breakdown through the
	// engine path.
	def := dense.ToF32(matgen.RankDeficient(rng, 128, 16, 8))
	if _, _, err := (CholQRPanel{Engine: &tcsim.TCEC{}}).Factor(def); !errors.Is(err, hazard.ErrBreakdown) {
		t.Fatalf("rank-deficient CholQR[tc-ec] should break down, got %v", err)
	}
}
