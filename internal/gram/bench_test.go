package gram

import (
	"testing"
)

// BenchmarkPanels compares the software execution of the panel
// implementations on a 4096×32 panel (the CAQR tile-tree runs its tiles on
// parallel goroutines, MGS is one sequential sweep, Householder is the
// blocked baseline).
func BenchmarkPanels(b *testing.B) {
	a := randPanel(1, 4096, TileCols)
	for _, p := range []Panel{&CAQRPanel{}, MGSPanel{}, &HouseholderPanel{}, CholQRPanel{}} {
		b.Run(p.Name(), func(b *testing.B) {
			b.SetBytes(2 * 4096 * TileCols * TileCols)
			for i := 0; i < b.N; i++ {
				p.Factor(a)
			}
		})
	}
}

func BenchmarkCAQRWide(b *testing.B) {
	a := randPanel(2, 4096, 128)
	p := &CAQRPanel{}
	b.SetBytes(2 * 4096 * 128 * 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Factor(a)
	}
}
