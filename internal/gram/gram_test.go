package gram

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/matgen"
	"tcqr/internal/tcsim"
)

func randPanel(seed int64, m, n int) *dense.M32 {
	rng := rand.New(rand.NewSource(seed))
	return dense.ToF32(matgen.Normal(rng, m, n))
}

func mustFactor(t *testing.T, p Panel, a *dense.M32) (q, r *dense.M32) {
	t.Helper()
	q, r, err := p.Factor(a)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return q, r
}

func checkQR(t *testing.T, name string, a, q, r *dense.M32, beTol, oeTol float64) {
	t.Helper()
	if q.Rows != a.Rows || q.Cols != a.Cols {
		t.Fatalf("%s: Q shape %dx%d", name, q.Rows, q.Cols)
	}
	if r.Rows != a.Cols || r.Cols != a.Cols {
		t.Fatalf("%s: R shape %dx%d", name, r.Rows, r.Cols)
	}
	if !accuracy.UpperTriangular(r) {
		t.Errorf("%s: R not upper triangular", name)
	}
	if be := accuracy.BackwardError(a, q, r); be > beTol {
		t.Errorf("%s: backward error %g > %g", name, be, beTol)
	}
	if oe := accuracy.OrthoError(q); oe > oeTol {
		t.Errorf("%s: orthogonality error %g > %g", name, oe, oeTol)
	}
}

func TestMGSWellConditioned(t *testing.T) {
	a := randPanel(1, 200, 32)
	q := a.Clone()
	r := dense.New[float32](32, 32)
	MGS(q, r)
	checkQR(t, "mgs", a, q, r, 1e-5, 1e-4)
	// MGS produces non-negative diagonal.
	for i := 0; i < 32; i++ {
		if r.At(i, i) < 0 {
			t.Errorf("R(%d,%d) = %v < 0", i, i, r.At(i, i))
		}
	}
}

func TestCGSWellConditioned(t *testing.T) {
	a := randPanel(2, 200, 32)
	q := a.Clone()
	r := dense.New[float32](32, 32)
	CGS(q, r)
	checkQR(t, "cgs", a, q, r, 1e-5, 1e-4)
}

func TestMGSBeatsCGSOnIllConditioned(t *testing.T) {
	// §3.6: CGS orthogonality degrades like κ², MGS like κ. At κ = 10⁴ in
	// float32 the gap is large and reliable.
	rng := rand.New(rand.NewSource(3))
	a := dense.ToF32(matgen.WithCond(rng, 300, 24, 1e4, matgen.Geometric))

	qm := a.Clone()
	rm := dense.New[float32](24, 24)
	MGS(qm, rm)
	qc := a.Clone()
	rc := dense.New[float32](24, 24)
	CGS(qc, rc)

	oeM := accuracy.OrthoError(qm)
	oeC := accuracy.OrthoError(qc)
	if oeC < 10*oeM {
		t.Errorf("CGS (%g) should lose much more orthogonality than MGS (%g)", oeC, oeM)
	}
	// Backward error stays small for both regardless of conditioning.
	if be := accuracy.BackwardError(a, qm, rm); be > 1e-5 {
		t.Errorf("MGS backward error %g", be)
	}
	if be := accuracy.BackwardError(a, qc, rc); be > 1e-5 {
		t.Errorf("CGS backward error %g", be)
	}
}

func TestMGSZeroColumn(t *testing.T) {
	a := randPanel(4, 50, 4)
	for i := 0; i < 50; i++ {
		a.Set(i, 2, 0)
	}
	// Make column 3 equal to column 0 after projection? Just check the zero
	// column path: R(2,2) = 0, Q(:,2) = 0, no NaNs.
	q := a.Clone()
	r := dense.New[float32](4, 4)
	MGS(q, r)
	if r.At(2, 2) != 0 {
		t.Errorf("R(2,2) = %v", r.At(2, 2))
	}
	if q.HasNaN() {
		t.Error("MGS produced NaN on zero column")
	}
}

func TestCAQRPanelTileWidth(t *testing.T) {
	// Width exactly TileCols with several full tiles plus a remainder that
	// must be folded into the last tile.
	p := &CAQRPanel{}
	a := randPanel(5, 4*TileRows+57, TileCols)
	q, r := mustFactor(t, p, a)
	checkQR(t, "caqr-32", a, q, r, 1e-5, 1e-4)
}

func TestCAQRPanelWide(t *testing.T) {
	// Width 128 exercises the split recursion above the tile tree.
	p := &CAQRPanel{}
	a := randPanel(6, 3*TileRows, 128)
	q, r := mustFactor(t, p, a)
	checkQR(t, "caqr-128", a, q, r, 1e-5, 2e-4)
}

func TestCAQRPanelSingleTile(t *testing.T) {
	// m below one tile: base case must be a single MGS.
	p := &CAQRPanel{}
	a := randPanel(7, 100, 32)
	q, r := mustFactor(t, p, a)
	checkQR(t, "caqr-small", a, q, r, 1e-5, 1e-4)
}

func TestCAQRDeepTree(t *testing.T) {
	// Small RowBlock forces several tree levels: with RowBlock 64 and width
	// 32, each level reduces rows by 2.
	p := &CAQRPanel{RowBlock: 64}
	a := randPanel(8, 2048, 32)
	q, r := mustFactor(t, p, a)
	checkQR(t, "caqr-deep", a, q, r, 1e-5, 2e-4)
}

func TestCAQRInputNotModified(t *testing.T) {
	a := randPanel(9, 600, 32)
	orig := a.Clone()
	(&CAQRPanel{}).Factor(a)
	if !dense.Equal(a, orig) {
		t.Error("CAQR panel modified its input")
	}
}

func TestCAQRWithTensorCoreEngine(t *testing.T) {
	// The Figure 7 (on, on) ablation: TC inside the panel still produces a
	// valid factorization, just with half-precision-level backward error.
	p := &CAQRPanel{Engine: &tcsim.TensorCore{}}
	a := randPanel(10, 3*TileRows, 128)
	q, r := mustFactor(t, p, a)
	checkQR(t, "caqr-tc", a, q, r, 1e-2, 1e-1)
	// And it must be strictly less accurate than the FP32 panel.
	qf, rf := mustFactor(t, &CAQRPanel{}, a)
	if accuracy.BackwardError(a, q, r) < accuracy.BackwardError(a, qf, rf) {
		t.Error("TC panel should not beat FP32 panel accuracy")
	}
}

func TestHouseholderPanel(t *testing.T) {
	p := &HouseholderPanel{}
	if p.Name() != "SGEQRF" {
		t.Errorf("name %q", p.Name())
	}
	a := randPanel(11, 500, 64)
	q, r := mustFactor(t, p, a)
	checkQR(t, "sgeqrf-panel", a, q, r, 1e-5, 1e-4)
}

func TestPanelImplementationsAgree(t *testing.T) {
	// All panels factor the same matrix; QR is unique up to column signs of
	// Q / row signs of R, so compare |R|.
	a := randPanel(12, 400, 32)
	panels := []Panel{&CAQRPanel{}, &HouseholderPanel{}, MGSPanel{}, CGSPanel{}}
	_, rRef := mustFactor(t, panels[0], a)
	for _, p := range panels[1:] {
		_, r := mustFactor(t, p, a)
		for j := 0; j < 32; j++ {
			for i := 0; i <= j; i++ {
				got := math.Abs(float64(r.At(i, j)))
				want := math.Abs(float64(rRef.At(i, j)))
				if math.Abs(got-want) > 1e-3*(1+want) {
					t.Fatalf("%s: |R(%d,%d)| = %g, CAQR has %g", p.Name(), i, j, got, want)
				}
			}
		}
	}
}

func TestCholQRWellConditioned(t *testing.T) {
	a := randPanel(20, 300, 32)
	q, r, err := CholQR(a)
	if err != nil {
		t.Fatal(err)
	}
	checkQR(t, "cholqr", a, q, r, 1e-5, 1e-3)
}

func TestCholQROrthogonalityDegradesAsKappaSquared(t *testing.T) {
	// Related work [28]: CholQR orthogonality ∝ κ²; MGS only ∝ κ. At
	// κ = 10² the gap is already pronounced in float32, and at κ ≈ 10⁴
	// CholQR breaks down entirely (κ² ≈ 1/ε₃₂).
	rng := rand.New(rand.NewSource(21))
	a := dense.ToF32(matgen.WithCond(rng, 400, 24, 1e2, matgen.Geometric))
	qc, _, err := CholQR(a)
	if err != nil {
		t.Fatal(err)
	}
	qm := a.Clone()
	rm := dense.New[float32](24, 24)
	MGS(qm, rm)
	oeC := accuracy.OrthoError(qc)
	oeM := accuracy.OrthoError(qm)
	if oeC < 10*oeM {
		t.Errorf("CholQR (%g) should lose far more orthogonality than MGS (%g)", oeC, oeM)
	}

	// Breakdown at large κ.
	hard := dense.ToF32(matgen.WithCond(rng, 400, 24, 3e4, matgen.Geometric))
	if _, _, err := CholQR(hard); err == nil {
		t.Error("CholQR should break down at κ=3e4 in float32")
	}

	// CholQR2 restores orthogonality where the first pass survives.
	q2, r2, err := CholQR2(a)
	if err != nil {
		t.Fatal(err)
	}
	if oe2 := accuracy.OrthoError(q2); oe2 > oeC/10 {
		t.Errorf("CholQR2 (%g) should fix CholQR (%g)", oe2, oeC)
	}
	if be := accuracy.BackwardError(a, q2, r2); be > 1e-4 {
		t.Errorf("CholQR2 backward error %g", be)
	}
}

func TestCholQRPanelInterface(t *testing.T) {
	p := CholQRPanel{}
	if p.Name() != "CholQR" {
		t.Error("name")
	}
	a := randPanel(22, 256, 16)
	q, r := mustFactor(t, p, a)
	checkQR(t, "cholqr-panel", a, q, r, 1e-5, 1e-3)
	// Wide input rejected via error.
	if _, _, err := CholQR(dense.New[float32](2, 4)); err == nil {
		t.Error("wide input must error")
	}
}
