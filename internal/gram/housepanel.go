package gram

import (
	"tcqr/internal/dense"
	"tcqr/internal/house"
)

type houseQR struct{ q, r *dense.M32 }

func housePanelFactor(a *dense.M32, nb int) houseQR {
	f := a.Clone()
	tau := house.Geqrf(f, nb)
	return houseQR{q: house.Orgqr(f, tau, nb), r: house.ExtractR(f)}
}
