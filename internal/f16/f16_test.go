package f16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownConversions(t *testing.T) {
	cases := []struct {
		in   float32
		want Float16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                                                             // MaxValue
		{-65504, 0xfbff},                                                            // -MaxValue
		{65536, 0x7c00},                                                             // overflows to +Inf
		{-70000, 0xfc00},                                                            // overflows to -Inf
		{6.103515625e-05, 0x0400} /* MinNormal */, {5.9604644775390625e-08, 0x0001}, // MinSubnormal
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{0.333251953125, 0x3555}, // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.in); got != c.want {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

func TestOverflowBoundary(t *testing.T) {
	// 65519.996... is the largest float32 below the rounding boundary 65520:
	// everything strictly below 65520 rounds down to MaxValue.
	if got := FromFloat32(65519.0); got != 0x7bff {
		t.Errorf("65519 should round to MaxValue, got %#04x", got)
	}
	// 65520 is exactly halfway between 65504 and "65536"; ties-to-even on the
	// would-be mantissa carries into infinity per IEEE.
	if got := FromFloat32(65520.0); !got.IsInf(1) {
		t.Errorf("65520 should round to +Inf, got %#04x", got)
	}
	if !Overflows(65521) {
		t.Error("Overflows(65521) = false, want true")
	}
	if Overflows(65504) {
		t.Error("Overflows(65504) = true, want false")
	}
	if Overflows(float32(math.Inf(1))) {
		t.Error("Overflows(+Inf) must be false: input was already infinite")
	}
}

func TestUnderflowBoundary(t *testing.T) {
	// Exactly half of the smallest subnormal ties to even = zero.
	half := float32(MinSubnormal / 2)
	if got := FromFloat32(half); got != 0 {
		t.Errorf("2^-25 should round to zero (tie to even), got %#04x", got)
	}
	if got := FromFloat32(half * 1.0001); got != 0x0001 {
		t.Errorf("slightly above 2^-25 should round to MinSubnormal, got %#04x", got)
	}
	if !Underflows(half) {
		t.Error("Underflows(2^-25) = false, want true")
	}
	if Underflows(float32(MinSubnormal)) {
		t.Error("Underflows(MinSubnormal) = true, want false")
	}
	if Underflows(0) {
		t.Error("Underflows(0) = true, want false")
	}
}

func TestRoundToNearestEvenTies(t *testing.T) {
	// 1 + 2^-11 is exactly between 1 (mantissa 0, even) and 1+2^-10
	// (mantissa 1, odd): must round down.
	x := float32(1 + 1.0/2048)
	if got := Round(x); got != 1 {
		t.Errorf("Round(1+2^-11) = %v, want 1 (tie to even)", got)
	}
	// 1 + 3·2^-11 is between mantissa 1 (odd) and mantissa 2 (even): up.
	x = float32(1 + 3.0/2048)
	want := float32(1 + 2.0/1024)
	if got := Round(x); got != want {
		t.Errorf("Round(1+3·2^-11) = %v, want %v (tie to even)", got, want)
	}
}

func TestRoundTripAllBitPatterns(t *testing.T) {
	// Every finite binary16 value must survive h → f32 → h unchanged, and
	// the conversion table must agree with the arithmetic path.
	for i := 0; i < 1<<16; i++ {
		h := Float16(i)
		f := h.Float32()
		if ToFloat32Fast(h) != f && !(h.IsNaN() && math.IsNaN(float64(ToFloat32Fast(h)))) {
			t.Fatalf("table mismatch at %#04x", i)
		}
		if h.IsNaN() {
			if !math.IsNaN(float64(f)) {
				t.Fatalf("%#04x: NaN pattern decoded to %v", i, f)
			}
			continue
		}
		if got := FromFloat32(f); got != h {
			t.Fatalf("round trip %#04x -> %v -> %#04x", i, f, got)
		}
	}
}

func TestNaNHandling(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("FromFloat32(NaN) = %#04x, not NaN", h)
	}
	if !math.IsNaN(float64(h.Float32())) {
		t.Fatal("NaN did not survive round trip")
	}
	if h.IsFinite() || h.IsInf(0) {
		t.Fatal("NaN misclassified")
	}
}

func TestClassification(t *testing.T) {
	if !FromFloat32(1e-6).IsSubnormal() {
		t.Error("1e-6 should be subnormal in binary16")
	}
	if FromFloat32(1).IsSubnormal() {
		t.Error("1 misclassified as subnormal")
	}
	if !FromFloat32(1).IsFinite() {
		t.Error("1 should be finite")
	}
	if got := FromFloat32(2).Neg(); got != FromFloat32(-2) {
		t.Errorf("Neg(2) = %#04x", got)
	}
}

func TestRelativeErrorBound(t *testing.T) {
	// For x in the normal range of binary16, |round(x)-x| <= Eps·|x|.
	f := func(x float32) bool {
		ax := math.Abs(float64(x))
		if ax < MinNormal || ax > MaxValue || math.IsNaN(float64(x)) {
			return true
		}
		r := float64(Round(x))
		return math.Abs(r-float64(x)) <= Eps*ax*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestRoundIdempotentAndMonotone(t *testing.T) {
	idem := func(x float32) bool {
		if math.IsNaN(float64(x)) {
			return true
		}
		r := Round(x)
		return Round(r) == r
	}
	if err := quick.Check(idem, &quick.Config{MaxCount: 20000}); err != nil {
		t.Errorf("idempotence: %v", err)
	}
	mono := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		ra, rb := float64(Round(a)), float64(Round(b))
		return ra <= rb || (math.IsNaN(ra) || math.IsNaN(rb))
	}
	if err := quick.Check(mono, &quick.Config{MaxCount: 20000}); err != nil {
		t.Errorf("monotonicity: %v", err)
	}
}

func TestSignSymmetry(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) {
			return true
		}
		return FromFloat32(-x) == FromFloat32(x)^0x8000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	src := []float32{0, 1, -1, 1e-9, 70000, -70000, 0.1, 65504}
	dst := make([]float32, len(src))
	RoundSlice(dst, src)
	for i, v := range src {
		if want := Round(v); dst[i] != want && !(math.IsNaN(float64(dst[i])) && math.IsNaN(float64(want))) {
			t.Errorf("RoundSlice[%d] = %v, want %v", i, dst[i], want)
		}
	}
	enc := make([]Float16, len(src))
	dec := make([]float32, len(src))
	Encode(enc, src)
	Decode(dec, enc)
	for i := range dec {
		if dec[i] != dst[i] {
			t.Errorf("Encode/Decode[%d] = %v, want %v", i, dec[i], dst[i])
		}
	}
	ov, uf := CountSpecials(src)
	if ov != 2 || uf != 1 {
		t.Errorf("CountSpecials = (%d, %d), want (2, 1)", ov, uf)
	}
	inPlace := append([]float32(nil), src...)
	RoundInPlace(inPlace)
	for i := range inPlace {
		if inPlace[i] != dst[i] {
			t.Errorf("RoundInPlace[%d] = %v, want %v", i, inPlace[i], dst[i])
		}
	}
}

func TestFromFloat64(t *testing.T) {
	if FromFloat64(1.0) != 0x3c00 {
		t.Error("FromFloat64(1) wrong")
	}
	if !FromFloat64(1e300).IsInf(1) {
		t.Error("FromFloat64(1e300) should be +Inf")
	}
	if FromFloat16RoundTrip := FromFloat64(0.1); FromFloat16RoundTrip != FromFloat32(0.1) {
		t.Error("FromFloat64(0.1) disagrees with FromFloat32")
	}
}

func TestEpsConstant(t *testing.T) {
	// 1 + 2ε must be the next representable value above 1; 1 + ε must not
	// round up past it.
	next := Float16(0x3c01).Float64()
	if next != 1+2*Eps {
		t.Errorf("next after 1 = %v, want %v", next, 1+2*Eps)
	}
}
