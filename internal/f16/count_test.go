package f16

import (
	"math"
	"math/rand"
	"testing"
)

// TestRoundInPlaceCountMatchesSeparatePasses: the fused round+count pass
// must produce exactly RoundInPlace's values and CountSpecials' tallies,
// across ordinary values, overflow/underflow magnitudes, infinities, NaNs,
// and signed zeros.
func TestRoundInPlaceCountMatchesSeparatePasses(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := make([]float32, 4096)
	for i := range x {
		switch rng.Intn(12) {
		case 0:
			x[i] = float32(rng.NormFloat64()) * 1e6 // overflows fp16
		case 1:
			x[i] = float32(rng.NormFloat64()) * 1e-9 // underflows fp16
		case 2:
			x[i] = float32(math.Inf(1 - 2*rng.Intn(2))) // already infinite: not an overflow
		case 3:
			x[i] = float32(math.NaN()) // counts as neither
		case 4:
			x[i] = float32(math.Copysign(0, -1)) // -0: not an underflow
		case 5:
			x[i] = 65504 * (1 + float32(rng.Float64())*0.01) // straddles MaxValue
		case 6:
			x[i] = MinSubnormal * float32(rng.Float64()) // straddles the flush threshold
		default:
			x[i] = float32(rng.NormFloat64())
		}
	}
	wantOv, wantUf := CountSpecials(x)
	want := append([]float32(nil), x...)
	RoundInPlace(want)
	got := append([]float32(nil), x...)
	ov, uf := RoundInPlaceCount(got)
	if ov != int64(wantOv) || uf != int64(wantUf) {
		t.Errorf("counts ov=%d uf=%d, want ov=%d uf=%d", ov, uf, wantOv, wantUf)
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("fused rounding differs at %d: %x vs %x (input %v)",
				i, math.Float32bits(got[i]), math.Float32bits(want[i]), x[i])
		}
	}
}
