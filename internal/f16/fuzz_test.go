package f16

import (
	"math"
	"testing"
)

// refRound16 is an independent float64 reference for the binary16 rounding
// in FromFloat32: round-to-nearest-even onto the binary16 grid, saturating
// to ±Inf past MaxValue = 65504 and flushing gradually through subnormals
// (spacing 2^-24) to signed zero. It shares no code with the bit-twiddling
// implementation under test.
func refRound16(x float32) float64 {
	v := float64(x)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	sign := 1.0
	if math.Signbit(v) {
		sign = -1
	}
	abs := math.Abs(v)
	var ulp float64
	if abs < math.Ldexp(1, -14) {
		ulp = math.Ldexp(1, -24) // subnormal spacing
	} else {
		_, exp := math.Frexp(abs)     // abs = f·2^exp, f ∈ [0.5, 1)
		ulp = math.Ldexp(1, exp-1-10) // 10 mantissa bits: spacing 2^(e-10)
	}
	r := math.RoundToEven(abs/ulp) * ulp
	if r > MaxValue {
		return sign * math.Inf(1)
	}
	return sign * r
}

// FuzzF16RoundTrip cross-checks the float32 → binary16 → float32 round trip
// against the float64 reference above, plus the idempotence and classifier
// invariants the TensorCore simulator relies on.
func FuzzF16RoundTrip(f *testing.F) {
	seeds := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1,
		1.0009765625,       // 1 + 2^-10, smallest step above 1
		1.00048828125,      // 1 + 2^-11, exactly halfway: ties to even (1)
		MaxValue,           // largest finite half
		65519.996,          // just below the overflow threshold
		65520,              // rounds to +Inf
		-70000,             // far past the threshold
		MinNormal,          // 2^-14
		MinSubnormal,       // 2^-24
		MinSubnormal / 2,   // halfway to zero: ties to even (0)
		MinSubnormal * 1.5, // halfway between subnormals
		3.14159265, 0.1, 1e-7, 1e30,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, x float32) {
		got := float64(Round(x))
		want := refRound16(x)
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("Round(NaN input %x) = %v, want NaN", math.Float32bits(x), got)
			}
		} else if got != want || math.Signbit(got) != math.Signbit(want) {
			t.Fatalf("Round(%v) = %v, want %v", x, got, want)
		}

		// A second trip through the format must be exact (every binary16
		// value is representable in float32).
		h := FromFloat32(x)
		if !h.IsNaN() {
			if h2 := FromFloat32(h.Float32()); h2 != h {
				t.Fatalf("round trip not idempotent: %#04x -> %#04x (input %v)", uint16(h), uint16(h2), x)
			}
		}

		// Classifier invariants against the reference outcome.
		finiteIn := !math.IsNaN(float64(x)) && !math.IsInf(float64(x), 0)
		if ovf := Overflows(x); ovf != (finiteIn && math.IsInf(want, 0)) {
			t.Fatalf("Overflows(%v) = %v, reference rounds to %v", x, ovf, want)
		}
		if uf := Underflows(x); uf != (finiteIn && x != 0 && want == 0) {
			t.Fatalf("Underflows(%v) = %v, reference rounds to %v", x, uf, want)
		}
		if h.IsFinite() && math.Abs(got) > MaxValue {
			t.Fatalf("finite half %v above MaxValue", got)
		}
	})
}
