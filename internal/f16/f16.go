// Package f16 implements the IEEE 754 binary16 ("half precision") floating
// point format in software. It is the numerical foundation of the TensorCore
// simulator: NVIDIA's tensor cores consume FP16 operands produced by
// round-to-nearest-even conversion (__float2half_rn), with values above
// 65504 in magnitude converting to ±Inf — the overflow hazard that Section
// 3.5 of the paper guards against with column scaling.
//
// The package provides bit-exact conversions in both directions (including
// gradual underflow to subnormals and NaN payload preservation), scalar
// constants of the format, and vectorized rounding helpers used by the GEMM
// simulator.
package f16

import "math"

// Float16 is an IEEE binary16 value in its raw bit representation:
// 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
type Float16 uint16

// Format constants.
const (
	// MaxValue is the largest finite binary16 value, (2-2^-10)·2^15.
	MaxValue = 65504.0
	// MinNormal is the smallest positive normal binary16 value, 2^-14.
	MinNormal = 6.103515625e-05
	// MinSubnormal is the smallest positive binary16 value, 2^-24.
	MinSubnormal = 5.9604644775390625e-08
	// Eps is the unit roundoff of binary16: 2^-11 (half the machine epsilon
	// 2^-10, for round-to-nearest). The paper's error bounds are stated in
	// terms of this unit roundoff.
	Eps = 1.0 / 2048.0
	// EpsF32 is the binary32 unit roundoff 2^-24, for comparison in the
	// mixed-precision error analyses.
	EpsF32 = 1.0 / 16777216.0
)

// Bit patterns for special values.
const (
	PositiveInfinity Float16 = 0x7c00
	NegativeInfinity Float16 = 0xfc00
	quietNaN         Float16 = 0x7e00
)

// FromFloat32 converts x to binary16 with round-to-nearest-even, the same
// semantics as CUDA __float2half_rn. Values whose rounded magnitude exceeds
// MaxValue become ±Inf; tiny values flush gradually through subnormals to
// signed zero.
func FromFloat32(x float32) Float16 {
	b := math.Float32bits(x)
	sign := Float16((b >> 16) & 0x8000)
	abs := b & 0x7fffffff

	if abs >= 0x7f800000 { // Inf or NaN
		if abs > 0x7f800000 { // NaN: preserve high payload bits, keep quiet
			m := Float16((abs >> 13) & 0x03ff)
			if m == 0 {
				m = 0x0200
			}
			return sign | 0x7c00 | m
		}
		return sign | PositiveInfinity
	}

	exp := int32(abs>>23) - 127 // unbiased exponent
	mant := abs & 0x007fffff

	switch {
	case exp >= 16:
		// Magnitude ≥ 2^16 = 65536 > MaxValue: rounds to infinity.
		return sign | PositiveInfinity
	case exp >= -14:
		// Normal range (rounding may still carry into the exponent and,
		// at the very top, into infinity — which is the IEEE behaviour).
		h := uint32(exp+15)<<10 | mant>>13
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && h&1 == 1) {
			h++
		}
		return sign | Float16(h)
	case exp >= -25:
		// Subnormal half (or rounds up to MinNormal). The value is
		// m·2^(exp-23) with the implicit bit restored; the target is an
		// integer count of MinSubnormal = 2^-24 units.
		m := mant | 0x00800000
		shift := uint32(-(exp + 1)) // in [14, 24]
		hm := m >> shift
		rem := m & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && hm&1 == 1) {
			hm++
		}
		return sign | Float16(hm)
	default:
		// Below half of the smallest subnormal: rounds to signed zero.
		return sign
	}
}

// FromFloat64 converts a float64 to binary16. The double rounding through
// float32 is harmless here because float32 has more than twice the precision
// of binary16 only in the mantissa sense; to stay bit-exact we convert
// directly when the value is exactly representable in float32 and fall back
// to the two-step path otherwise. In practice the GEMM simulator only ever
// converts float32 data; this helper exists for the float64 front ends.
func FromFloat64(x float64) Float16 {
	return FromFloat32(float32(x))
}

// Float32 converts h back to float32 exactly (every binary16 value is
// exactly representable in binary32).
func (h Float16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal: normalize into binary32.
		e := uint32(113) // biased exponent of 2^-14
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case exp == 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000) // ±Inf
		}
		return math.Float32frombits(sign | 0x7f800000 | mant<<13) // NaN
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | mant<<13)
	}
}

// Float64 converts h to float64 exactly.
func (h Float16) Float64() float64 { return float64(h.Float32()) }

// IsNaN reports whether h is a NaN.
func (h Float16) IsNaN() bool { return h&0x7c00 == 0x7c00 && h&0x03ff != 0 }

// IsInf reports whether h is infinite. sign > 0 tests for +Inf, sign < 0 for
// -Inf, and sign == 0 for either.
func (h Float16) IsInf(sign int) bool {
	switch {
	case sign > 0:
		return h == PositiveInfinity
	case sign < 0:
		return h == NegativeInfinity
	default:
		return h&0x7fff == 0x7c00
	}
}

// IsFinite reports whether h is neither infinite nor NaN.
func (h Float16) IsFinite() bool { return h&0x7c00 != 0x7c00 }

// IsSubnormal reports whether h is subnormal (nonzero with zero exponent).
func (h Float16) IsSubnormal() bool { return h&0x7c00 == 0 && h&0x03ff != 0 }

// Neg returns -h.
func (h Float16) Neg() Float16 { return h ^ 0x8000 }

// Round performs the round trip float32 → binary16 → float32. This is the
// elementary operation the TensorCore simulator applies to every GEMM
// operand.
func Round(x float32) float32 { return FromFloat32(x).Float32() }

// Overflows reports whether converting x to binary16 would produce an
// infinity from a finite input — the overflow catastrophe of Section 3.5.
func Overflows(x float32) bool {
	if math.IsInf(float64(x), 0) || math.IsNaN(float64(x)) {
		return false
	}
	return FromFloat32(x).IsInf(0)
}

// Underflows reports whether a nonzero finite x converts to zero in
// binary16 (complete underflow; gradual underflow to subnormals does not
// count).
func Underflows(x float32) bool {
	return x != 0 && !math.IsNaN(float64(x)) && FromFloat32(x)&0x7fff == 0
}
