package f16

import (
	"math/rand"
	"testing"
)

func benchData(n int) []float32 {
	rng := rand.New(rand.NewSource(1))
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	return x
}

func BenchmarkFromFloat32(b *testing.B) {
	x := benchData(4096)
	var sink Float16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range x {
			sink = FromFloat32(v)
		}
	}
	_ = sink
	b.SetBytes(4096 * 4)
}

func BenchmarkToFloat32Table(b *testing.B) {
	h := make([]Float16, 4096)
	for i := range h {
		h[i] = Float16(i * 13)
	}
	var sink float32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range h {
			sink = ToFloat32Fast(v)
		}
	}
	_ = sink
	b.SetBytes(4096 * 2)
}

func BenchmarkRoundSlice(b *testing.B) {
	x := benchData(1 << 16)
	dst := make([]float32, len(x))
	b.SetBytes(int64(len(x) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoundSlice(dst, x)
	}
}
