package f16

import "math"

// The vector helpers below are the hot path of the TensorCore simulator:
// every GEMM operand matrix is pushed through RoundSlice once per call.
// To keep the simulator fast on multi-megabyte matrices, Float32 conversion
// is served by a 65536-entry lookup table (256 KiB) built at package init,
// and RoundSlice fuses the two conversions.

var toF32Table [1 << 16]float32

func init() {
	for i := range toF32Table {
		toF32Table[i] = Float16(i).Float32()
	}
}

// ToFloat32Fast converts h to float32 via the lookup table.
func ToFloat32Fast(h Float16) float32 { return toF32Table[h] }

// RoundSlice writes round16(src[i]) into dst[i] for every element. dst and
// src may alias. It panics if the lengths differ.
func RoundSlice(dst, src []float32) {
	if len(dst) != len(src) {
		panic("f16: RoundSlice length mismatch")
	}
	for i, v := range src {
		dst[i] = toF32Table[FromFloat32(v)]
	}
}

// RoundInPlace rounds every element of x through binary16.
func RoundInPlace(x []float32) { RoundSlice(x, x) }

// RoundInPlaceCount rounds every element of x through binary16 and reports
// how many finite elements became infinite and how many nonzero elements
// flushed to zero — CountSpecials fused into the rounding pass, so the
// simulator inspects each operand element exactly once. The counts match
// Overflows/Underflows element-wise (NaNs and ±0 contribute to neither).
func RoundInPlaceCount(x []float32) (overflow, underflow int64) {
	for i, v := range x {
		h := FromFloat32(v)
		x[i] = toF32Table[h]
		if h&0x7fff == 0x7c00 {
			// Rounded to ±Inf: an overflow only if the input was finite.
			if math.Float32bits(v)&0x7fffffff < 0x7f800000 {
				overflow++
			}
		} else if h&0x7fff == 0 && v != 0 {
			// Rounded to ±0 from a nonzero input (NaN never lands here).
			underflow++
		}
	}
	return overflow, underflow
}

// Encode converts src to raw binary16 values.
func Encode(dst []Float16, src []float32) {
	if len(dst) != len(src) {
		panic("f16: Encode length mismatch")
	}
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
}

// Decode converts raw binary16 values back to float32.
func Decode(dst []float32, src []Float16) {
	if len(dst) != len(src) {
		panic("f16: Decode length mismatch")
	}
	for i, h := range src {
		dst[i] = toF32Table[h]
	}
}

// CountSpecials scans x after binary16 rounding and reports how many
// elements overflowed to infinity and how many nonzero elements flushed to
// zero. It is used by the column-scaling safeguard diagnostics.
func CountSpecials(x []float32) (overflow, underflow int) {
	for _, v := range x {
		if Overflows(v) {
			overflow++
		} else if Underflows(v) {
			underflow++
		}
	}
	return overflow, underflow
}
