package f16

// The vector helpers below are the hot path of the TensorCore simulator:
// every GEMM operand matrix is pushed through RoundSlice once per call.
// To keep the simulator fast on multi-megabyte matrices, Float32 conversion
// is served by a 65536-entry lookup table (256 KiB) built at package init,
// and RoundSlice fuses the two conversions.

var toF32Table [1 << 16]float32

func init() {
	for i := range toF32Table {
		toF32Table[i] = Float16(i).Float32()
	}
}

// ToFloat32Fast converts h to float32 via the lookup table.
func ToFloat32Fast(h Float16) float32 { return toF32Table[h] }

// RoundSlice writes round16(src[i]) into dst[i] for every element. dst and
// src may alias. It panics if the lengths differ.
func RoundSlice(dst, src []float32) {
	if len(dst) != len(src) {
		panic("f16: RoundSlice length mismatch")
	}
	for i, v := range src {
		dst[i] = toF32Table[FromFloat32(v)]
	}
}

// RoundInPlace rounds every element of x through binary16.
func RoundInPlace(x []float32) { RoundSlice(x, x) }

// Encode converts src to raw binary16 values.
func Encode(dst []Float16, src []float32) {
	if len(dst) != len(src) {
		panic("f16: Encode length mismatch")
	}
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
}

// Decode converts raw binary16 values back to float32.
func Decode(dst []float32, src []Float16) {
	if len(dst) != len(src) {
		panic("f16: Decode length mismatch")
	}
	for i, h := range src {
		dst[i] = toF32Table[h]
	}
}

// CountSpecials scans x after binary16 rounding and reports how many
// elements overflowed to infinity and how many nonzero elements flushed to
// zero. It is used by the column-scaling safeguard diagnostics.
func CountSpecials(x []float32) (overflow, underflow int) {
	for _, v := range x {
		if Overflows(v) {
			overflow++
		} else if Underflows(v) {
			underflow++
		}
	}
	return overflow, underflow
}
