// Package metrics is a dependency-free, race-safe metrics registry for the
// serving subsystem: counters, gauges, and fixed-bucket histograms with
// quantile estimation, rendered in the Prometheus text exposition format
// (version 0.0.4) by WriteText / ServeHTTP.
//
// The paper's argument is a per-stage precision/performance trade (TensorCore
// GEMM fraction, panel cost, refinement iteration counts), so the serving
// layer needs per-stage latency distributions and per-engine work counters,
// not just request totals. This package provides the primitives; the serve
// package owns the metric families and their names (DESIGN.md §10).
//
// Design constraints, in order:
//
//   - zero dependencies (stdlib only), so the compute library stays
//     dependency-free;
//   - hot-path writes are a few atomic operations (no locks, no maps on the
//     counter/histogram Observe paths once a series exists);
//   - bounded cardinality: labeled families cap their distinct series and
//     collapse the excess into a reserved "_other" series, so no client-
//     influenced label can grow a map without bound.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSeries bounds the distinct label-value combinations a labeled
// family tracks before collapsing new combinations into the "_other" series.
const DefaultMaxSeries = 64

// OverflowLabel is the reserved label value that absorbs series past a
// family's cardinality bound.
const OverflowLabel = "_other"

// LatencyBuckets is the default histogram layout for request-path stage
// durations in seconds: roughly logarithmic from 100µs (a cache-hit lookup)
// to 60s (a cold factorization at the largest accepted shape).
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets is the default histogram layout for small cardinal quantities
// (coalescer batch sizes, queue depths at sample time).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// kind discriminates the family types for rendering.
type kind int

const (
	kindCounter kind = iota
	kindCounterFunc
	kindGauge
	kindHistogram
)

// family is one named metric family in a registry.
type family struct {
	name    string
	help    string
	kind    kind
	counter *Counter       // kindCounter, unlabeled
	cvec    *CounterVec    // kindCounter, labeled
	cfn     func() int64   // kindCounterFunc
	gfn     func() float64 // kindGauge, sampled
	gvec    *GaugeVec      // kindGauge, labeled settable
	hist    *Histogram     // kindHistogram, unlabeled
	hvec    *HistogramVec  // kindHistogram, labeled
}

// Registry holds named metric families. The zero value is not usable; create
// with NewRegistry. Registration panics on an invalid or duplicate name —
// families are wired once at server construction, so a clash is a programming
// error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) add(f *family) {
	if !nameRe.MatchString(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("metrics: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
}

// Counter registers and returns an unlabeled monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterVec registers and returns a labeled counter family with the given
// label names. Series cardinality is capped at DefaultMaxSeries; further
// label combinations share the OverflowLabel series.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := newCounterVec(name, labels)
	r.add(&family{name: name, help: help, kind: kindCounter, cvec: v})
	return v
}

// CounterFunc registers a counter whose value is read from fn at render
// time. Use it to expose counters another component already maintains (pool
// completions, cache hits) without double-counting on the hot path.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, kind: kindCounterFunc, cfn: fn})
}

// GaugeFunc registers a gauge sampled from fn at render time (queue depth,
// cache bytes, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: kindGauge, gfn: fn})
}

// GaugeVec registers and returns a labeled settable gauge family (peer health
// state, build info). Series cardinality is capped at DefaultMaxSeries;
// further label combinations share the OverflowLabel series.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := newGaugeVec(name, labels)
	r.add(&family{name: name, help: help, kind: kindGauge, gvec: v})
	return v
}

// Histogram registers and returns an unlabeled fixed-bucket histogram.
// Buckets are ascending upper bounds; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.add(&family{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// HistogramVec registers and returns a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := newHistogramVec(name, buckets, labels)
	r.add(&family{name: name, help: help, kind: kindHistogram, hvec: v})
	return v
}

// --- counter ---------------------------------------------------------------

// Counter is a monotonically increasing event count. All methods are safe
// for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 panics: counters are monotonic).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a labeled counter family with bounded cardinality.
type CounterVec struct {
	name      string
	labels    []string
	maxSeries int

	mu     sync.RWMutex
	series map[string]*Counter
	keys   []string // insertion-ordered keys for deterministic iteration
}

func newCounterVec(name string, labels []string) *CounterVec {
	checkLabels(name, labels)
	return &CounterVec{
		name:      name,
		labels:    labels,
		maxSeries: DefaultMaxSeries,
		series:    make(map[string]*Counter),
	}
}

// With returns the counter for the given label values (one per label name,
// in order), creating it on first use. Past the cardinality bound every new
// combination maps to the shared OverflowLabel series.
func (v *CounterVec) With(values ...string) *Counter {
	key := v.key(values)
	v.mu.RLock()
	c := v.series[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.series[key]; c != nil {
		return c
	}
	if len(v.series) >= v.maxSeries {
		key = v.overflowKey()
		if c := v.series[key]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.series[key] = c
	v.keys = append(v.keys, key)
	return c
}

func (v *CounterVec) key(values []string) string {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	return strings.Join(values, "\x1f")
}

func (v *CounterVec) overflowKey() string {
	vals := make([]string, len(v.labels))
	for i := range vals {
		vals[i] = OverflowLabel
	}
	return strings.Join(vals, "\x1f")
}

// Snapshot returns the current value of every series, keyed by the label
// values joined with "," (a single-label family's keys are the bare values).
// The returned map is a private copy, safe to encode without locking.
func (v *CounterVec) Snapshot() map[string]int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.series))
	for key, c := range v.series {
		out[strings.ReplaceAll(key, "\x1f", ",")] = c.Value()
	}
	return out
}

// Len reports the number of distinct series (the cardinality tests assert
// this stays bounded under hostile input).
func (v *CounterVec) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.series)
}

// --- gauge -----------------------------------------------------------------

// Gauge is a settable instantaneous value. All methods are safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a labeled settable gauge family with bounded cardinality,
// mirroring CounterVec's series discipline.
type GaugeVec struct {
	name      string
	labels    []string
	maxSeries int

	mu     sync.RWMutex
	series map[string]*Gauge
}

func newGaugeVec(name string, labels []string) *GaugeVec {
	checkLabels(name, labels)
	return &GaugeVec{
		name:      name,
		labels:    labels,
		maxSeries: DefaultMaxSeries,
		series:    make(map[string]*Gauge),
	}
}

// With returns the gauge for the given label values (one per label name, in
// order), creating it on first use. Past the cardinality bound every new
// combination maps to the shared OverflowLabel series.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	v.mu.RLock()
	g := v.series[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g := v.series[key]; g != nil {
		return g
	}
	if len(v.series) >= v.maxSeries {
		vals := make([]string, len(v.labels))
		for i := range vals {
			vals[i] = OverflowLabel
		}
		key = strings.Join(vals, "\x1f")
		if g := v.series[key]; g != nil {
			return g
		}
	}
	g = &Gauge{}
	v.series[key] = g
	return g
}

// Snapshot returns the current value of every series, keyed by the label
// values joined with ",". The returned map is a private copy.
func (v *GaugeVec) Snapshot() map[string]float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]float64, len(v.series))
	for key, g := range v.series {
		out[strings.ReplaceAll(key, "\x1f", ",")] = g.Value()
	}
	return out
}

// Len reports the number of distinct series.
func (v *GaugeVec) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.series)
}

// --- histogram -------------------------------------------------------------

// Histogram is a fixed-bucket distribution with an exact sum, count, and
// max, and interpolated quantile estimation. Observations are a handful of
// atomic operations; there is no locking.
type Histogram struct {
	bounds  []float64      // ascending upper bounds (exclusive of +Inf)
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	maxBits atomic.Uint64 // float64 bits, CAS-maximized
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("metrics: histogram needs at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets must be strictly ascending")
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket containing the target rank — the standard fixed-bucket
// estimator. Ranks landing in the +Inf bucket return the largest finite
// bound (clamped by the observed max); an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: the best bounded estimate is the last finite
				// bound, but never past the observed max.
				return math.Min(h.Max(), h.bounds[len(h.bounds)-1]*2)
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			est := lo + (hi-lo)*frac
			if m := h.Max(); m > 0 && est > m {
				est = m
			}
			return est
		}
		cum += n
	}
	return h.Max()
}

// snapshotCounts returns per-bucket counts (cumulative rendering happens in
// WriteText).
func (h *Histogram) snapshotCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// HistogramVec is a labeled histogram family with bounded cardinality.
type HistogramVec struct {
	name      string
	labels    []string
	buckets   []float64
	maxSeries int

	mu     sync.RWMutex
	series map[string]*Histogram
}

func newHistogramVec(name string, buckets []float64, labels []string) *HistogramVec {
	checkLabels(name, labels)
	// Validate the layout once, eagerly.
	newHistogram(buckets)
	return &HistogramVec{
		name:      name,
		labels:    labels,
		buckets:   buckets,
		maxSeries: DefaultMaxSeries,
		series:    make(map[string]*Histogram),
	}
}

// With returns the histogram for the given label values, creating it on
// first use (OverflowLabel series past the cardinality bound).
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	v.mu.RLock()
	h := v.series[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.series[key]; h != nil {
		return h
	}
	if len(v.series) >= v.maxSeries {
		vals := make([]string, len(v.labels))
		for i := range vals {
			vals[i] = OverflowLabel
		}
		key = strings.Join(vals, "\x1f")
		if h := v.series[key]; h != nil {
			return h
		}
	}
	h = newHistogram(v.buckets)
	v.series[key] = h
	return h
}

// Series returns the live histogram for every label combination, keyed by
// the label values joined with ",". The histograms themselves are safe to
// read concurrently; the map is a copy.
func (v *HistogramVec) Series() map[string]*Histogram {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]*Histogram, len(v.series))
	for key, h := range v.series {
		out[strings.ReplaceAll(key, "\x1f", ",")] = h
	}
	return out
}

func checkLabels(name string, labels []string) {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: %s: labeled family needs at least one label", name))
	}
	for _, l := range labels {
		if !nameRe.MatchString(l) {
			panic(fmt.Sprintf("metrics: %s: invalid label name %q", name, l))
		}
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
