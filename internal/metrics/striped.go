package metrics

import (
	"sync/atomic"
	"unsafe"
)

// stripes is the shard count of a Striped counter. A small power of two:
// enough to spread the hottest serving counters across cache lines at the
// core counts tcqrd targets (ISSUE 6 sweeps GOMAXPROCS 1-8) without
// bloating every counter by kilobytes.
const stripes = 16

// stripe is one padded shard: the value sits alone on its 64-byte cache
// line so concurrent Adds on different shards never false-share.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// Striped is an int64 counter sharded across padded cache lines. Add picks
// a shard from the calling goroutine's stack address, so concurrent
// goroutines spread across shards and the fast path is one uncontended
// atomic add — the per-P counter pattern for serving hot paths where a
// single shared atomic would bounce its cache line between cores. Load sums
// the shards (scrape-time cost, not request-time). The zero value is ready
// to use.
type Striped struct {
	s [stripes]stripe
}

// Add increments the counter by d.
func (c *Striped) Add(d int64) {
	c.s[stripeIndex()].v.Add(d)
}

// Inc increments the counter by one.
func (c *Striped) Inc() { c.Add(1) }

// Load returns the current sum across shards. The sum is atomic per shard
// but not across them — exact once concurrent writers quiesce, and within
// one in-flight increment per writer otherwise, which is the usual contract
// for scraped monitoring counters.
func (c *Striped) Load() int64 {
	var total int64
	for i := range c.s {
		total += c.s[i].v.Load()
	}
	return total
}

// stripeIndex derives a shard index from the address of a stack local.
// Goroutine stacks are spread across the address space, so mixing a few
// mid bits of the stack pointer keeps concurrent goroutines on different
// shards; for any single goroutine the value is stable within one call but
// may change across calls (stacks move) — harmless, since every shard sums
// into the same counter.
func stripeIndex() int {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return int((p >> 6) ^ (p >> 12)) & (stripes - 1)
}
