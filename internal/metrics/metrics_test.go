package metrics

import (
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	v := r.CounterVec("requests_total", "reqs", "endpoint")
	v.With("solve").Add(3)
	v.With("factorize").Inc()
	v.With("solve").Inc()
	snap := v.Snapshot()
	if snap["solve"] != 4 || snap["factorize"] != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	// The snapshot must be a private copy.
	snap["solve"] = 99
	if v.Snapshot()["solve"] != 4 {
		t.Fatalf("snapshot aliases live state")
	}
}

func TestCounterVecCardinalityBound(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("errors_total", "errs", "detail")
	for i := 0; i < 10*DefaultMaxSeries; i++ {
		v.With(fmt.Sprintf("hostile-detail-%d", i)).Inc()
	}
	if n := v.Len(); n > DefaultMaxSeries+1 {
		t.Fatalf("cardinality %d grew past the bound %d", n, DefaultMaxSeries+1)
	}
	snap := v.Snapshot()
	if snap[OverflowLabel] != int64(10*DefaultMaxSeries-DefaultMaxSeries) {
		t.Fatalf("overflow series holds %d, want the %d excess increments",
			snap[OverflowLabel], 10*DefaultMaxSeries-DefaultMaxSeries)
	}
}

func TestHistogramBasics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5.605; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	if h.Max() != 5 {
		t.Fatalf("max = %g, want 5", h.Max())
	}
	// Median rank 2.5 of 5 falls in the (0.01, 0.1] bucket.
	if q := h.Quantile(0.5); q <= 0.01 || q > 0.1 {
		t.Fatalf("p50 = %g, want in (0.01, 0.1]", q)
	}
	// p99 lands in the +Inf bucket: clamped to max.
	if q := h.Quantile(0.99); q > h.Max() {
		t.Fatalf("p99 = %g exceeds the observed max %g", q, h.Max())
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile should be 0")
	}
	h.Observe(0.5)
	if q := h.Quantile(0.999); q > 1 {
		t.Fatalf("single small observation gave q=%g > first bound", q)
	}
	h.Observe(math.NaN()) // must not corrupt state
	if h.Count() != 1 {
		t.Fatalf("NaN observation was counted")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	h.ObserveDuration(250 * time.Millisecond)
	if math.Abs(h.Sum()-0.25) > 1e-12 {
		t.Fatalf("sum = %g, want 0.25", h.Sum())
	}
}

func TestPrometheusTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a counter").Add(7)
	v := r.CounterVec("b_total", "b counter", "code")
	v.With(`weird"value\with`).Inc()
	v.With("ok").Add(2)
	r.GaugeFunc("c_gauge", "a gauge", func() float64 { return 1.5 })
	r.CounterFunc("d_total", "a counter func", func() int64 { return 42 })
	h := r.Histogram("e_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50)
	hv := r.HistogramVec("f_seconds", "labeled histogram", []float64{1}, "stage")
	hv.With("solve").Observe(0.5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# HELP a_total a counter\n# TYPE a_total counter\na_total 7\n",
		`b_total{code="ok"} 2`,
		`b_total{code="weird\"value\\with"} 1`,
		"# TYPE c_gauge gauge\nc_gauge 1.5\n",
		"# TYPE d_total counter\nd_total 42\n",
		`e_seconds_bucket{le="0.1"} 1`,
		`e_seconds_bucket{le="1"} 2`,
		`e_seconds_bucket{le="+Inf"} 3`,
		"e_seconds_sum 50.55\ne_seconds_count 3\n",
		`f_seconds_bucket{stage="solve",le="1"} 1`,
		`f_seconds_sum{stage="solve"} 0.5`,
		`f_seconds_count{stage="solve"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Families must be sorted and every sample line must parse as
	// `name{labels} value` or `name value`.
	validateExposition(t, text)
}

// validateExposition checks the structural invariants of the Prometheus text
// format: HELP/TYPE precede samples of their family, sample lines match the
// grammar, and histogram cumulative buckets are monotonic.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+]+|\+Inf|NaN)$`)
	var lastCum = map[string]int64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		if strings.HasSuffix(m[1], "_bucket") {
			val, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				t.Errorf("non-integer bucket count in %q", line)
				continue
			}
			seriesKey := m[1] + stripLe(m[2])
			if val < lastCum[seriesKey] {
				t.Errorf("non-monotonic cumulative bucket in %q", line)
			}
			lastCum[seriesKey] = val
		}
	}
}

func stripLe(labels string) string {
	i := strings.Index(labels, "le=")
	if i < 0 {
		return labels
	}
	return labels[:i]
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body %q", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

// TestConcurrentUse hammers every mutating path from many goroutines; run
// under -race this is the registry's thread-safety gate.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	v := r.CounterVec("conc_vec_total", "", "k")
	h := r.Histogram("conc_seconds", "", LatencyBuckets)
	hv := r.HistogramVec("conc_vec_seconds", "", []float64{0.1, 1}, "k")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				v.With(fmt.Sprintf("k%d", i%100)).Inc()
				h.Observe(float64(i%7) / 100)
				hv.With("s").Observe(float64(i%3) / 10)
				if i%50 == 0 {
					var sb strings.Builder
					_ = r.WriteText(&sb)
					_ = v.Snapshot()
					_ = h.Quantile(0.95)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Fatalf("counter = %d, want %d", c.Value(), 8*500)
	}
	if h.Count() != 8*500 {
		t.Fatalf("histogram count = %d, want %d", h.Count(), 8*500)
	}
}
