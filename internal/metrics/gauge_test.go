package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestGaugeSetAndValue(t *testing.T) {
	var g Gauge
	if v := g.Value(); v != 0 {
		t.Fatalf("zero gauge = %v, want 0", v)
	}
	g.Set(2.5)
	if v := g.Value(); v != 2.5 {
		t.Fatalf("after Set(2.5): %v", v)
	}
	g.Set(-1) // gauges go down; counters don't
	if v := g.Value(); v != -1 {
		t.Fatalf("after Set(-1): %v", v)
	}
}

func TestGaugeVecSeries(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("test_peer_state", "Peer state.", "peer")
	v.With("n1").Set(2)
	v.With("n2").Set(0)
	v.With("n1").Set(1) // same series, not a new one
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	snap := v.Snapshot()
	if snap["n1"] != 1 || snap["n2"] != 0 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestGaugeVecCardinalityBound(t *testing.T) {
	v := newGaugeVec("test_bounded", []string{"id"})
	v.maxSeries = 3
	for i := 0; i < 20; i++ {
		v.With(string(rune('a' + i))).Set(float64(i))
	}
	// 3 real series plus the shared overflow bucket.
	if v.Len() > 4 {
		t.Fatalf("Len = %d, want <= 4", v.Len())
	}
	if _, ok := v.Snapshot()[OverflowLabel]; !ok {
		t.Fatalf("overflow series missing: %v", v.Snapshot())
	}
}

func TestGaugeVecExposition(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("tcqrd_cluster_peer_state", "Peer liveness (2=up,1=degraded,0=down).", "peer")
	v.With("n1").Set(2)
	v.With("n2").Set(1)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE tcqrd_cluster_peer_state gauge",
		`tcqrd_cluster_peer_state{peer="n1"} 2`,
		`tcqrd_cluster_peer_state{peer="n2"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestGaugeVecConcurrent(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("test_concurrent_gauge", "x", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.With("a").Set(float64(j))
				v.With("b").Set(float64(i))
			}
		}(i)
	}
	wg.Wait()
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
}
