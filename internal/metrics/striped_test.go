package metrics

import (
	"sync"
	"testing"
)

func TestStripedConcurrentSum(t *testing.T) {
	var c Striped
	const goroutines, per = 32, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*per {
		t.Fatalf("Load() = %d, want %d", got, goroutines*per)
	}
	c.Add(-5)
	if got := c.Load(); got != goroutines*per-5 {
		t.Fatalf("after Add(-5): %d", got)
	}
}
