package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format rendered by WriteText.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in the Prometheus text
// exposition format: families sorted by name, series sorted by label values,
// histograms expanded into cumulative _bucket series plus _sum and _count.
// Families with no series yet still emit their HELP/TYPE header, so a
// scraper always sees the full schema.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n", f.name)
			if f.counter != nil {
				fmt.Fprintf(bw, "%s %d\n", f.name, f.counter.Value())
			} else {
				writeCounterVec(bw, f.name, f.cvec)
			}
		case kindCounterFunc:
			fmt.Fprintf(bw, "# TYPE %s counter\n", f.name)
			fmt.Fprintf(bw, "%s %d\n", f.name, f.cfn())
		case kindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n", f.name)
			if f.gfn != nil {
				fmt.Fprintf(bw, "%s %s\n", f.name, formatFloat(f.gfn()))
			} else {
				writeGaugeVec(bw, f.name, f.gvec)
			}
		case kindHistogram:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", f.name)
			if f.hist != nil {
				writeHistogram(bw, f.name, "", f.hist)
			} else {
				writeHistogramVec(bw, f.name, f.hvec)
			}
		}
	}
	return bw.Flush()
}

// ServeHTTP implements http.Handler: GET returns the text exposition.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "metrics endpoint requires GET", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", TextContentType)
	_ = r.WriteText(w)
}

func writeCounterVec(w io.Writer, name string, v *CounterVec) {
	for _, s := range sortedSeries(v.labels, func() map[string]int64 {
		v.mu.RLock()
		defer v.mu.RUnlock()
		out := make(map[string]int64, len(v.series))
		for k, c := range v.series {
			out[k] = c.Value()
		}
		return out
	}()) {
		fmt.Fprintf(w, "%s{%s} %d\n", name, s.labelString, s.value)
	}
}

func writeGaugeVec(w io.Writer, name string, v *GaugeVec) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.series))
	vals := make(map[string]float64, len(v.series))
	for k, g := range v.series {
		keys = append(keys, k)
		vals[k] = g.Value()
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s} %s\n", name, labelString(v.labels, strings.Split(k, "\x1f")), formatFloat(vals[k]))
	}
}

func writeHistogramVec(w io.Writer, name string, v *HistogramVec) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.series))
	hists := make(map[string]*Histogram, len(v.series))
	for k, h := range v.series {
		keys = append(keys, k)
		hists[k] = h
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		writeHistogram(w, name, labelString(v.labels, strings.Split(k, "\x1f")), hists[k])
	}
}

// writeHistogram renders one histogram series. labels is the pre-rendered
// `k="v",...` prefix ("" for an unlabeled histogram); the le label is
// appended to it.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	counts := h.snapshotCounts()
	var cum int64
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatFloat(bound), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
}

type renderedSeries struct {
	labelString string
	value       int64
}

func sortedSeries(labels []string, values map[string]int64) []renderedSeries {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]renderedSeries, 0, len(keys))
	for _, k := range keys {
		out = append(out, renderedSeries{
			labelString: labelString(labels, strings.Split(k, "\x1f")),
			value:       values[k],
		})
	}
	return out
}

// labelString renders `name="value"` pairs with Prometheus escaping.
func labelString(names, values []string) string {
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(values[i]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	h = strings.ReplaceAll(h, "\n", `\n`)
	return h
}
