package tsqr

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/faultinject"
	"tcqr/internal/gram"
	"tcqr/internal/hazard"
	"tcqr/internal/matgen"
	"tcqr/internal/rgs"
)

// tol is the acceptance bound for backward error and orthogonality on the
// well-conditioned random inputs in this file — the same 5e-3 bound the
// root-level adversarial battery enforces on the serial CAQR path.
const tol = 5e-3

func randTall(seed int64, m, n int) *dense.M32 {
	rng := rand.New(rand.NewSource(seed))
	return dense.ToF32(matgen.Normal(rng, m, n))
}

func checkFactors(t *testing.T, a *dense.M32, res *Result) {
	t.Helper()
	if be := accuracy.BackwardError(a, res.Q, res.R); be > tol || math.IsNaN(be) {
		t.Errorf("backward error %g > %g", be, tol)
	}
	if oe := accuracy.OrthoError(res.Q); oe > tol || math.IsNaN(oe) {
		t.Errorf("orthogonality error %g > %g", oe, tol)
	}
	if !accuracy.UpperTriangular(res.R) {
		t.Error("R is not upper triangular")
	}
	for j := 0; j < res.R.Cols; j++ {
		if res.R.At(j, j) < 0 {
			t.Errorf("R(%d,%d) = %g < 0 after sign canonicalization", j, j, res.R.At(j, j))
		}
	}
}

func TestTSQRReconstructs(t *testing.T) {
	a := randTall(1, 1000, 64)
	res, err := Factor(a, Options{BlockRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 7 { // 1000/128 = 7 chunks, remainder folded into the last
		t.Errorf("Blocks = %d, want 7", res.Blocks)
	}
	if res.Levels != 3 { // 7 -> 4 -> 2 -> 1
		t.Errorf("Levels = %d, want 3", res.Levels)
	}
	if len(res.BlockFactor) != res.Blocks {
		t.Errorf("len(BlockFactor) = %d, want %d", len(res.BlockFactor), res.Blocks)
	}
	checkFactors(t, a, res)
}

// TestTSQRPartitionEdges exercises the canonical-partition corner cases:
// square input, exact multiple of BlockRows, remainder folding, and the
// BlockRows < n clamp.
func TestTSQRPartitionEdges(t *testing.T) {
	cases := []struct {
		name       string
		m, n, rb   int
		wantBlocks int
	}{
		{"square", 48, 48, 16, 1},            // rb clamps to n=48, m/48 = 1
		{"exact-multiple", 512, 32, 128, 4},  // 512/128 = 4, no remainder
		{"remainder-folds", 600, 32, 128, 4}, // 600/128 = 4, last block 216 rows
		{"clamp-to-cols", 256, 64, 8, 4},     // rb clamps 8 -> 64, 256/64 = 4
		{"shorter-than-block", 100, 16, 512, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := randTall(7, tc.m, tc.n)
			res, err := Factor(a, Options{BlockRows: tc.rb})
			if err != nil {
				t.Fatal(err)
			}
			if res.Blocks != tc.wantBlocks {
				t.Errorf("Blocks = %d, want %d", res.Blocks, tc.wantBlocks)
			}
			checkFactors(t, a, res)
		})
	}
}

func TestTSQRInputValidation(t *testing.T) {
	if _, err := Factor(nil, Options{}); !errors.Is(err, hazard.ErrEmpty) {
		t.Errorf("nil input: got %v, want ErrEmpty", err)
	}
	wide := dense.New[float32](4, 8)
	if _, err := Factor(wide, Options{}); !errors.Is(err, hazard.ErrShape) {
		t.Errorf("wide input: got %v, want ErrShape", err)
	}
	empty := dense.New[float32](0, 0)
	if _, err := Factor(empty, Options{}); !errors.Is(err, hazard.ErrEmpty) {
		t.Errorf("empty input: got %v, want ErrEmpty", err)
	}
}

// bitsEqual reports whether two matrices are Float32bits-identical —
// stricter than numerical equality (distinguishes ±0, compares NaN
// payloads).
func bitsEqual(x, y *dense.M32) bool {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return false
	}
	for j := 0; j < x.Cols; j++ {
		xc, yc := x.Col(j), y.Col(j)
		for i := range xc {
			if math.Float32bits(xc[i]) != math.Float32bits(yc[i]) {
				return false
			}
		}
	}
	return true
}

// TestTSQRGoldenSingleBlockMatchesSerial is the bit-for-bit golden: with a
// single canonical chunk the TSQR pipeline and the serial RGSQRF path (at
// n <= cutoff) both reduce to one CAQR panel call on the same operand, so
// after sign canonicalization — a no-op here, Gram-Schmidt diagonals are
// positive — Q and R must be Float32bits-identical, proving the TSQR
// plumbing adds zero numerical perturbation.
func TestTSQRGoldenSingleBlockMatchesSerial(t *testing.T) {
	a := randTall(3, 480, 64)
	res, err := Factor(a, Options{BlockRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 1 {
		t.Fatalf("Blocks = %d, want 1", res.Blocks)
	}
	serial, err := rgs.Factor(a, rgs.Options{DisableScaling: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(res.R, serial.R) {
		t.Error("single-block TSQR R is not bit-identical to serial R")
	}
	if !bitsEqual(res.Q, serial.Q) {
		t.Error("single-block TSQR Q is not bit-identical to serial Q")
	}
}

// TestTSQRGoldenDeterminism pins the determinism contract: for a FIXED
// canonical partition (BlockRows), the factors are Float32bits-identical
// across every Workers bound {1,2,4,8} — the number of blocks in flight at
// once — and every GOMAXPROCS {1,4,8}, because scheduling never changes
// which floating-point operations run on which operands.
//
// Deliberately NOT asserted: bit-identity across different BlockRows.
// Changing the numerical partition changes the operation tree and therefore
// the rounding — no parallel QR can make 2-block and 8-block partitions
// agree bit-for-bit; across partitions the results agree to factorization
// accuracy instead (TestTSQRCrossPartitionAgreement).
func TestTSQRGoldenDeterminism(t *testing.T) {
	a := randTall(4, 2000, 48)
	ref, err := Factor(a, Options{BlockRows: 256, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Blocks != 7 {
		t.Fatalf("Blocks = %d, want 7", ref.Blocks)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 4, 8} {
			res, err := Factor(a, Options{BlockRows: 256, Workers: workers})
			if err != nil {
				t.Fatalf("procs=%d workers=%d: %v", procs, workers, err)
			}
			if !bitsEqual(res.R, ref.R) {
				t.Errorf("procs=%d workers=%d: R not bit-identical to reference", procs, workers)
			}
			if !bitsEqual(res.Q, ref.Q) {
				t.Errorf("procs=%d workers=%d: Q not bit-identical to reference", procs, workers)
			}
		}
	}
}

// TestTSQRCrossPartitionAgreement: different block counts cannot agree
// bit-for-bit (different operation trees), but after sign canonicalization
// every partition must produce the same R to factorization accuracy and
// meet the same reconstruction/orthogonality bounds.
func TestTSQRCrossPartitionAgreement(t *testing.T) {
	a := randTall(5, 1024, 32)
	serial, err := rgs.Factor(a, rgs.Options{DisableScaling: true})
	if err != nil {
		t.Fatal(err)
	}
	normA := frob(a)
	for _, rb := range []int{1024, 512, 256, 128} { // 1, 2, 4, 8 blocks
		res, err := Factor(a, Options{BlockRows: rb})
		if err != nil {
			t.Fatalf("BlockRows=%d: %v", rb, err)
		}
		checkFactors(t, a, res)
		if d := frobDiff(res.R, serial.R) / normA; d > tol {
			t.Errorf("BlockRows=%d: ‖R_tsqr − R_serial‖/‖A‖ = %g > %g", rb, d, tol)
		}
	}
}

// TestTSQRSignCanonicalization uses the Householder panel — whose raw R
// diagonal carries data-dependent signs, unlike Gram-Schmidt norms — to
// prove canonicalization earns its keep: the diagonal comes out
// non-negative and the canonical R agrees with the (already-canonical)
// CAQR-panel R across a different tree, which only holds when signs have
// been normalized away.
func TestTSQRSignCanonicalization(t *testing.T) {
	a := randTall(6, 768, 24)
	house, err := Factor(a, Options{BlockRows: 192, Panel: &gram.HouseholderPanel{}})
	if err != nil {
		t.Fatal(err)
	}
	checkFactors(t, a, house)
	caqr, err := Factor(a, Options{BlockRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	if d := frobDiff(house.R, caqr.R) / frob(a); d > tol {
		t.Errorf("canonical R disagrees across panels/trees: %g > %g", d, tol)
	}
}

func TestTSQRBreakdownPropagatesBlockIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := dense.ToF32(matgen.WithZeroColumns(rng, 512, 16, 3))
	_, err := Factor(a, Options{BlockRows: 128})
	if !errors.Is(err, hazard.ErrBreakdown) {
		t.Fatalf("zero column: got %v, want ErrBreakdown", err)
	}
}

func TestTSQRLadderRecoversBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := dense.ToF32(matgen.WithZeroColumns(rng, 512, 16, 5))
	rep := &hazard.Report{}
	res, err := Factor(a, Options{
		BlockRows: 128,
		Panel:     gram.NewLadder(&gram.CAQRPanel{}, rep),
	})
	if err != nil {
		t.Fatalf("ladder did not recover: %v", err)
	}
	if !rep.Any() {
		t.Error("ladder recovered without recording any hazard event")
	}
	// Rank-deficient: Q·R must still reconstruct A; orthogonality of the
	// null-space columns is not defined, so only backward error is bounded.
	if be := accuracy.BackwardError(a, res.Q, res.R); be > tol {
		t.Errorf("backward error after ladder recovery %g > %g", be, tol)
	}
}

func TestTSQRFaultSites(t *testing.T) {
	defer faultinject.Disarm()
	a := randTall(10, 512, 16)

	if err := faultinject.Arm("seed=1;" + SiteBlockFactor + "=error@once=1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Factor(a, Options{BlockRows: 128}); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("block.factor error: got %v, want ErrInjected", err)
	}

	if err := faultinject.Arm("seed=1;" + SiteTreeReduce + "=error@once=1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Factor(a, Options{BlockRows: 128}); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("tree.reduce error: got %v, want ErrInjected", err)
	}

	// A panic action inside a worker goroutine must be contained as a
	// breakdown error, not tear down the process.
	if err := faultinject.Arm("seed=1;" + SiteBlockFactor + "=panic@once=1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Factor(a, Options{BlockRows: 128, Workers: 4}); !errors.Is(err, hazard.ErrBreakdown) {
		t.Errorf("block.factor panic: got %v, want contained ErrBreakdown", err)
	}
	faultinject.Disarm()

	res, err := Factor(a, Options{BlockRows: 128})
	if err != nil {
		t.Fatalf("disarmed: %v", err)
	}
	checkFactors(t, a, res)
}

func frob(a *dense.M32) float64 {
	var s float64
	for j := 0; j < a.Cols; j++ {
		for _, v := range a.Col(j) {
			s += float64(v) * float64(v)
		}
	}
	return math.Sqrt(s)
}

func frobDiff(x, y *dense.M32) float64 {
	var s float64
	for j := 0; j < x.Cols; j++ {
		xc, yc := x.Col(j), y.Col(j)
		for i := range xc {
			d := float64(xc[i]) - float64(yc[i])
			s += d * d
		}
	}
	return math.Sqrt(s)
}
