package tsqr

import (
	"errors"
	"math/rand"
	"testing"

	"tcqr/internal/accuracy"
	"tcqr/internal/dense"
	"tcqr/internal/hazard"
	"tcqr/internal/matgen"
	"tcqr/internal/rgs"
)

// FuzzTSQRBlockVsSerial drives random tall shapes and block sizes through
// the TSQR pipeline against the serial RGSQRF reference: whatever the
// partition, either both paths fail with a typed hazard or the TSQR
// factors reconstruct A, are orthogonal, and the sign-canonicalized R
// agrees with the serial R to factorization accuracy.
func FuzzTSQRBlockVsSerial(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(8), uint16(32))
	f.Add(int64(2), uint16(500), uint8(31), uint16(64))
	f.Add(int64(3), uint16(64), uint8(64), uint16(1))
	f.Add(int64(4), uint16(300), uint8(1), uint16(4096))
	f.Fuzz(func(t *testing.T, seed int64, mRaw uint16, nRaw uint8, rbRaw uint16) {
		n := int(nRaw)%32 + 1
		m := n + int(mRaw)%512
		rb := int(rbRaw)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		a := dense.ToF32(matgen.Normal(rng, m, n))

		res, err := Factor(a, Options{BlockRows: rb, Workers: 2})
		serial, serr := rgs.Factor(a, rgs.Options{DisableScaling: true})
		if err != nil || serr != nil {
			// Random normal matrices are full rank almost surely, but a
			// degenerate draw may break a Gram-Schmidt panel on one path's
			// partition and not the other's. Any failure must be typed.
			if err != nil && !errors.Is(err, hazard.ErrBreakdown) {
				t.Fatalf("untyped TSQR failure: %v", err)
			}
			if serr != nil && !errors.Is(serr, hazard.ErrBreakdown) {
				t.Fatalf("untyped serial failure: %v", serr)
			}
			t.Skip("typed breakdown")
		}
		if res.Blocks < 1 || res.Blocks > m {
			t.Fatalf("implausible block count %d for %d rows", res.Blocks, m)
		}
		if be := accuracy.BackwardError(a, res.Q, res.R); be > tol {
			t.Errorf("m=%d n=%d rb=%d: backward error %g > %g", m, n, rb, be, tol)
		}
		if oe := accuracy.OrthoError(res.Q); oe > tol {
			t.Errorf("m=%d n=%d rb=%d: orthogonality error %g > %g", m, n, rb, oe, tol)
		}
		if !accuracy.UpperTriangular(res.R) {
			t.Errorf("m=%d n=%d rb=%d: R not upper triangular", m, n, rb)
		}
		normA := frob(a)
		if normA == 0 {
			return
		}
		if d := frobDiff(res.R, serial.R) / normA; d > tol {
			t.Errorf("m=%d n=%d rb=%d: ‖R_tsqr − R_serial‖/‖A‖ = %g > %g", m, n, rb, d, tol)
		}
	})
}
