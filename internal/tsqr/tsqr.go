// Package tsqr implements Direct TSQR (Benson, Gleich & Demmel,
// arXiv:1301.1071) for tall-skinny matrices: the m×n input (m >= n) is cut
// into row blocks, every block is QR-factorized independently (and
// concurrently), the stacked n×n R factors are reduced pairwise up a binary
// tree, and the explicit thin Q is recovered by composing the tree's small
// orthogonal factors down to the leaves with one batched GEMM.
//
// # Determinism contract
//
// The numerical result depends only on the input and on the *canonical
// partition* — the fixed BlockRows chunk height and the fixed pairwise
// reduction tree in chunk-index order. The Workers option is scheduling
// only: it bounds how many block factorizations run at once but never
// changes which floating-point operations run on which operands, so the
// factors are Float64bits-identical for every Workers value and every
// GOMAXPROCS. (Changing BlockRows changes the partition and therefore the
// rounding — results across *different* BlockRows agree to factorization
// accuracy, not bit-for-bit; the golden tests pin this distinction.)
//
// After the reduction the R diagonal is sign-canonicalized to be
// non-negative (Q absorbs the flips), so TSQR and the serial factorization
// produce the same canonical R regardless of the per-block sign
// conventions their panels happened to choose.
package tsqr

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/faultinject"
	"tcqr/internal/gram"
	"tcqr/internal/hazard"
)

// DefaultBlockRows is the canonical chunk height: tall enough that each
// block amortizes its panel overhead, short enough that a 4096-row matrix
// yields 8-way block parallelism.
const DefaultBlockRows = 512

// Fault-injection sites (see internal/faultinject). Armed specs can force
// errors, panics, or delays at each stage of the pipeline.
const (
	// SiteBlockFactor fires once per leaf block factorization.
	SiteBlockFactor = "tsqr.block.factor"
	// SiteTreeReduce fires once per internal reduction-tree node.
	SiteTreeReduce = "tsqr.tree.reduce"
)

// Options configures a factorization. The zero value uses the canonical
// DefaultBlockRows partition, GOMAXPROCS workers, and the FP32 CAQR panel.
type Options struct {
	// BlockRows is the canonical chunk height of the numerical partition
	// (0 = DefaultBlockRows). It is clamped to at least the column count so
	// every block is itself tall. BlockRows is part of the result's
	// identity: two runs agree bit-for-bit exactly when their BlockRows
	// agree.
	BlockRows int
	// Workers bounds how many block/node factorizations run concurrently
	// (<= 0 = GOMAXPROCS). Scheduling only — never changes result bits.
	Workers int
	// Panel factors each block and each reduction node (nil = the FP32
	// CAQR panel). Wrap it in gram.NewLadder for breakdown escalation.
	Panel gram.Panel
}

func (o *Options) blockRows(n int) int {
	rb := o.BlockRows
	if rb <= 0 {
		rb = DefaultBlockRows
	}
	if rb < n {
		rb = n
	}
	return rb
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) panel() gram.Panel {
	if o.Panel != nil {
		return o.Panel
	}
	return defaultPanel
}

var defaultPanel = &gram.CAQRPanel{}

// Stats reports the shape and per-stage wall timings of one factorization,
// feeding the serving layer's tcqrd_tsqr_* histogram families.
type Stats struct {
	// Blocks is the number of leaf row blocks of the canonical partition.
	Blocks int
	// Levels is the depth of the reduction tree (0 when Blocks == 1).
	Levels int
	// Workers is the effective scheduling bound the run used.
	Workers int
	// BlockRows is the effective canonical chunk height.
	BlockRows int
	// BlockFactor holds the wall time of each leaf block factorization,
	// indexed by block.
	BlockFactor []time.Duration
	// Reduce is the wall time of the R reduction tree (zero when
	// Blocks == 1).
	Reduce time.Duration
	// Recover is the wall time of sign canonicalization plus explicit-Q
	// recovery.
	Recover time.Duration
}

// Result is a computed factorization A = Q·R with Q m×n orthonormal, R n×n
// upper triangular with non-negative diagonal.
type Result struct {
	Q *dense.M32
	R *dense.M32
	Stats
}

// Factor computes the Direct TSQR factorization of a (m×n, m >= n). The
// input is not modified. Panel breakdowns (zero or dependent columns)
// propagate as errors wrapping hazard.ErrBreakdown — tagged with the block
// or tree node that hit them — unless opts.Panel is a gram.Ladder, which
// escalates instead. A panicking panel (or an armed panic failpoint) is
// contained and surfaced as a breakdown error rather than tearing down the
// worker group.
//
// Finiteness of the input is NOT validated here (the public tcqr wrapper
// does); non-finite inputs yield non-finite factors or breakdown errors.
func Factor(a *dense.M32, opts Options) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("tsqr: nil matrix: %w", hazard.ErrEmpty)
	}
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("tsqr: matrix is %dx%d; TSQR requires m >= n: %w", m, n, hazard.ErrShape)
	}
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("tsqr: matrix is %dx%d: %w", m, n, hazard.ErrEmpty)
	}

	rb := opts.blockRows(n)
	workers := opts.workers()
	panel := opts.panel()

	// Canonical partition, mirroring the CAQR tile tree: nb full chunks of
	// rb rows with the remainder folded into the last chunk, so every chunk
	// has at least rb >= n rows.
	nb := m / rb
	if nb < 1 {
		nb = 1
	}
	bounds := make([]int, nb+1)
	for i := 0; i < nb; i++ {
		bounds[i] = i * rb
	}
	bounds[nb] = m

	res := &Result{Stats: Stats{
		Blocks:      nb,
		Workers:     workers,
		BlockRows:   rb,
		BlockFactor: make([]time.Duration, nb),
	}}

	// Stage 1: factor every leaf block concurrently (bounded).
	leafQ := make([]*dense.M32, nb)
	leafR := make([]*dense.M32, nb)
	errs := make([]error, nb)
	runBounded(workers, nb, func(i int) {
		t0 := time.Now()
		q, r, err := safeFactor(SiteBlockFactor, panel, a.View(bounds[i], 0, bounds[i+1]-bounds[i], n))
		res.BlockFactor[i] = time.Since(t0)
		if err != nil {
			errs[i] = fmt.Errorf("tsqr: block %d (rows %d:%d): %w", i, bounds[i], bounds[i+1], err)
			return
		}
		leafQ[i], leafR[i] = q, r
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}

	if nb == 1 {
		// Single chunk: no tree. Canonicalize signs directly on the factors.
		t0 := time.Now()
		canonicalizeSigns(leafQ[0], leafR[0])
		res.Recover = time.Since(t0)
		res.Q, res.R = leafQ[0], leafR[0]
		return res, nil
	}

	// Stage 2: pairwise binary tree over the R factors, in chunk-index
	// order. Node k of a level factors the 2n×n stack [cur[2k]; cur[2k+1]];
	// an odd trailing R passes through unchanged. The tree shape is a pure
	// function of nb, so the reduction is deterministic no matter how the
	// node factorizations are scheduled.
	t0 := time.Now()
	type treeNode struct {
		q    *dense.M32 // 2n×n node factor; nil for a passthrough node
		pass bool
	}
	var tree [][]treeNode
	cur := leafR
	for len(cur) > 1 {
		pairs := len(cur) / 2
		odd := len(cur)%2 == 1
		width := pairs
		if odd {
			width++
		}
		lvl := make([]treeNode, width)
		next := make([]*dense.M32, width)
		nerrs := make([]error, pairs)
		runBounded(workers, pairs, func(k int) {
			stacked := dense.New[float32](2*n, n)
			stacked.View(0, 0, n, n).CopyFrom(cur[2*k])
			stacked.View(n, 0, n, n).CopyFrom(cur[2*k+1])
			q, r, err := safeFactor(SiteTreeReduce, panel, stacked)
			if err != nil {
				nerrs[k] = fmt.Errorf("tsqr: reduce level %d node %d: %w", len(tree), k, err)
				return
			}
			lvl[k] = treeNode{q: q}
			next[k] = r
		})
		if err := firstError(nerrs); err != nil {
			return nil, err
		}
		if odd {
			lvl[pairs] = treeNode{pass: true}
			next[pairs] = cur[len(cur)-1]
		}
		tree = append(tree, lvl)
		cur = next
	}
	rootR := cur[0]
	res.Levels = len(tree)
	res.Reduce = time.Since(t0)

	// Stage 3: sign-canonicalize the root R and recover the explicit Q by
	// composing each tree node's factor down to its leaves. The downstream
	// transform starts as D = diag(signs) so Q·R is unchanged by the
	// canonicalization; at a node with 2n×n factor Qk and downstream
	// transform T, the left child inherits Qk[0:n,:]·T and the right child
	// Qk[n:2n,:]·T. Finally Q_block_i = leafQ_i·T_i in one batched GEMM.
	t0 = time.Now()
	signs := canonicalizeR(rootR)
	rootT := dense.New[float32](n, n)
	for j := 0; j < n; j++ {
		rootT.Set(j, j, signs[j])
	}
	trans := []*dense.M32{rootT}
	for l := len(tree) - 1; l >= 0; l-- {
		lvl := tree[l]
		childCount := 0
		for _, nd := range lvl {
			if nd.pass {
				childCount++
			} else {
				childCount += 2
			}
		}
		childTrans := make([]*dense.M32, childCount)
		var aList, bList, cList []*dense.M32
		for k, nd := range lvl {
			t := trans[k]
			if nd.pass {
				childTrans[2*k] = t
				continue
			}
			top := nd.q.View(0, 0, n, n)
			bot := nd.q.View(n, 0, n, n)
			tTop := dense.New[float32](n, n)
			tBot := dense.New[float32](n, n)
			aList = append(aList, top, bot)
			bList = append(bList, t, t)
			cList = append(cList, tTop, tBot)
			childTrans[2*k] = tTop
			childTrans[2*k+1] = tBot
		}
		blas.GemmBatch(blas.NoTrans, blas.NoTrans, 1, aList, bList, 0, cList)
		trans = childTrans
	}

	q := dense.New[float32](m, n)
	outBlocks := make([]*dense.M32, nb)
	for i := 0; i < nb; i++ {
		outBlocks[i] = q.View(bounds[i], 0, bounds[i+1]-bounds[i], n)
	}
	blas.GemmBatch(blas.NoTrans, blas.NoTrans, 1, leafQ, trans, 0, outBlocks)
	res.Recover = time.Since(t0)

	res.Q, res.R = q, rootR
	return res, nil
}

// safeFactor fires the stage failpoint and runs one panel factorization,
// containing panics (from an armed panic action or a misbehaving panel) as
// breakdown errors so a single poisoned block cannot tear down the process
// from inside a worker goroutine.
func safeFactor(site string, p gram.Panel, a *dense.M32) (q, r *dense.M32, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			q, r = nil, nil
			err = fmt.Errorf("tsqr: panic in %s panel: %v: %w", p.Name(), rec, hazard.ErrBreakdown)
		}
	}()
	if ferr := faultinject.Fire(site); ferr != nil {
		return nil, nil, ferr
	}
	return p.Factor(a)
}

// runBounded executes fn(0..n-1) with at most `workers` concurrent calls —
// the same bounded-worker semantics as the serve pool, minus the queue
// (all n tasks are known up front).
func runBounded(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// firstError returns the lowest-index error so concurrent failures surface
// deterministically.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// canonicalizeR flips every row of r whose diagonal is negative so the
// diagonal is non-negative, returning the per-column signs (+1/-1) the
// caller must absorb into Q. Sign flips are exact in floating point, so
// canonicalization never perturbs the factorization.
func canonicalizeR(r *dense.M32) []float32 {
	n := r.Cols
	signs := make([]float32, n)
	for j := range signs {
		signs[j] = 1
	}
	for i := 0; i < n; i++ {
		if r.At(i, i) < 0 {
			signs[i] = -1
			for j := i; j < n; j++ {
				r.Set(i, j, -r.At(i, j))
			}
		}
	}
	return signs
}

// canonicalizeSigns applies the single-block canonicalization in place:
// rows of r and the matching columns of q are negated together.
func canonicalizeSigns(q, r *dense.M32) {
	signs := canonicalizeR(r)
	for j, s := range signs {
		if s < 0 {
			col := q.Col(j)
			for i := range col {
				col[i] = -col[i]
			}
		}
	}
}
