package tsqr

import (
	"testing"

	"tcqr/internal/rgs"
)

// The TSQR benchmarks report flops through SetBytes (the repository-wide
// convention: "MB/s" is Mflop/s), using the serial RGSQRF flop count —
// TSQR performs the same ~2mn² leading-order work plus the O(n³·blocks)
// tree, so rates are directly comparable across the three benchmarks.
//
// BENCH_7.json sweeps these at -procs 1,4,8. On a single-core host the
// parallel rows cannot beat the serial ones (they oversubscribe one core);
// the acceptance gate there is bit-identical factors and zero regression
// of the serial path, per ISSUE 7.

const benchM, benchN = 4096, 256

// BenchmarkTSQRFactorize4096x256 is the parallel pipeline at the default
// worker bound (GOMAXPROCS).
func BenchmarkTSQRFactorize4096x256(b *testing.B) {
	benchTSQR(b, 0)
}

// BenchmarkTSQRWorkers1Factorize4096x256 is the same canonical partition
// scheduled on one worker — the bit-identical sequential baseline that
// isolates scheduling overhead from numerical work.
func BenchmarkTSQRWorkers1Factorize4096x256(b *testing.B) {
	benchTSQR(b, 1)
}

func benchTSQR(b *testing.B, workers int) {
	a := randTall(42, benchM, benchN)
	b.SetBytes(rgs.FlopCount(benchM, benchN, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(a, Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTSQRSerialRGSBaseline4096x256 is the serial path cold
// /v1/factorize takes today (rgs.Factor on the TensorCore engine) — the
// number the parallel pipeline must beat on a multicore host.
func BenchmarkTSQRSerialRGSBaseline4096x256(b *testing.B) {
	a := randTall(42, benchM, benchN)
	b.SetBytes(rgs.FlopCount(benchM, benchN, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rgs.Factor(a, rgs.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
