package eig

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/accuracy"
	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/matgen"
)

// symWithSpectrum builds A = U·diag(λ)·Uᵀ with Haar U.
func symWithSpectrum(rng *rand.Rand, lambda []float64) *dense.M64 {
	n := len(lambda)
	u := matgen.HaarOrthonormal(rng, n, n)
	ul := dense.New[float64](n, n)
	for j := 0; j < n; j++ {
		copy(ul.Col(j), u.Col(j))
		blas.Scal(lambda[j], ul.Col(j))
	}
	a := dense.New[float64](n, n)
	blas.Gemm(blas.NoTrans, blas.Trans, 1, ul, u, 0, a)
	// Exact symmetrization against rounding.
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			v := 0.5 * (a.At(i, j) + a.At(j, i))
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestSymKnownSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lambda := []float64{-5, -1.5, 0, 0.25, 2, 7, 7.5, 100}
	a := symWithSpectrum(rng, lambda)
	dec, err := Sym(a)
	if err != nil {
		t.Fatal(err)
	}
	// Eigenvalues ascending match (lambda sorted ascending already).
	for i, want := range lambda {
		if math.Abs(dec.Values[i]-want) > 1e-10*(1+math.Abs(want)) {
			t.Errorf("λ_%d = %v, want %v", i, dec.Values[i], want)
		}
	}
	// Eigenvectors: orthogonal and satisfy A·v = λ·v.
	if oe := accuracy.OrthoError64(dec.Vectors); oe > 1e-12 {
		t.Errorf("eigenvector orthogonality %g", oe)
	}
	for j := range lambda {
		v := dec.Vectors.Col(j)
		av := make([]float64, len(v))
		blas.Gemv(blas.NoTrans, 1, a, v, 0, av)
		for i := range av {
			if math.Abs(av[i]-dec.Values[j]*v[i]) > 1e-9*(1+math.Abs(dec.Values[j])) {
				t.Fatalf("A·v != λ·v for eigenpair %d (row %d: %v vs %v)", j, i, av[i], dec.Values[j]*v[i])
			}
		}
	}
}

func TestSymRandomReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 10, 40, 77} {
		a := matgen.Normal(rng, n, n)
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				v := 0.5 * (a.At(i, j) + a.At(j, i))
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		dec, err := Sym(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Reconstruct V·Λ·Vᵀ.
		vl := dense.New[float64](n, n)
		for j := 0; j < n; j++ {
			copy(vl.Col(j), dec.Vectors.Col(j))
			blas.Scal(dec.Values[j], vl.Col(j))
		}
		rec := dense.New[float64](n, n)
		blas.Gemm(blas.NoTrans, blas.Trans, 1, vl, dec.Vectors, 0, rec)
		for i := range rec.Data {
			if math.Abs(rec.Data[i]-a.Data[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: reconstruction differs at %d: %v vs %v", n, i, rec.Data[i], a.Data[i])
			}
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if dec.Values[i] < dec.Values[i-1] {
				t.Fatalf("n=%d: eigenvalues not ascending", n)
			}
		}
	}
}

func TestSymEdgeCases(t *testing.T) {
	// Diagonal matrix: eigenvalues are the diagonal, sorted.
	d := dense.New[float64](4, 4)
	for i, v := range []float64{3, -1, 2, 0} {
		d.Set(i, i, v)
	}
	dec, err := Sym(d)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 0, 2, 3}
	for i := range want {
		if math.Abs(dec.Values[i]-want[i]) > 1e-14 {
			t.Errorf("diag λ_%d = %v, want %v", i, dec.Values[i], want[i])
		}
	}
	// Empty and rejected shapes.
	if _, err := Sym(dense.New[float64](0, 0)); err != nil {
		t.Errorf("empty: %v", err)
	}
	if _, err := Sym(dense.New[float64](2, 3)); err == nil {
		t.Error("non-square must be rejected")
	}
	// Repeated eigenvalues (identity).
	id := dense.New[float64](6, 6)
	id.SetIdentity()
	di, err := Sym(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range di.Values {
		if math.Abs(v-1) > 1e-13 {
			t.Errorf("identity eigenvalue %v", v)
		}
	}
	if oe := accuracy.OrthoError64(di.Vectors); oe > 1e-12 {
		t.Errorf("identity eigenvectors not orthogonal: %g", oe)
	}
}

func TestSymValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lambda := []float64{1, 2, 3, 4, 5}
	a := symWithSpectrum(rng, lambda)
	vals, err := SymValues(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range lambda {
		if math.Abs(vals[i]-want) > 1e-10 {
			t.Errorf("λ_%d = %v", i, vals[i])
		}
	}
}

func TestSymOnlyLowerTriangleRead(t *testing.T) {
	// Garbage in the strict upper triangle must not affect the result.
	rng := rand.New(rand.NewSource(4))
	lambda := []float64{1, 4, 9, 16}
	a := symWithSpectrum(rng, lambda)
	messy := a.Clone()
	for j := 0; j < 4; j++ {
		for i := 0; i < j; i++ {
			messy.Set(i, j, 1e6)
		}
	}
	dec, err := Sym(messy)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range lambda {
		if math.Abs(dec.Values[i]-want) > 1e-10*want {
			t.Errorf("λ_%d = %v, want %v (upper triangle leaked)", i, dec.Values[i], want)
		}
	}
}
