// Package eig implements a symmetric eigensolver by the classic two-stage
// QR-algorithm pipeline — Householder tridiagonalization followed by the
// implicit QL iteration with shifts — covering the last entry in the
// paper's list of QR applications ("linear system, LLS problems,
// orthogonalization of a set of vectors, and eigendecompositions").
// It runs in float64 and serves as the high-accuracy reference
// eigensolver for the spectral experiments (Rayleigh-Ritz in the Krylov
// example, spectrum checks in tests).
package eig

import (
	"errors"
	"fmt"
	"math"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// ErrNoConvergence is returned if the QL iteration exceeds its sweep limit
// (essentially impossible for symmetric tridiagonal matrices; 30 sweeps
// per eigenvalue is the classical bound).
var ErrNoConvergence = errors.New("eig: QL iteration did not converge")

// Decomposition is A = V·diag(Values)·Vᵀ with Values ascending and V
// orthogonal (columns are eigenvectors).
type Decomposition struct {
	Values  []float64
	Vectors *dense.M64
}

// Sym computes the full eigendecomposition of the symmetric matrix a
// (only the lower triangle is referenced). The input is not modified.
func Sym(a *dense.M64) (*Decomposition, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("eig: matrix is %dx%d; need square symmetric", a.Rows, a.Cols)
	}
	if n == 0 {
		return &Decomposition{Vectors: dense.New[float64](0, 0)}, nil
	}
	d, e, q := tridiagonalize(a)
	if err := tqli(d, e, q); err != nil {
		return nil, err
	}
	sortAscending(d, q)
	return &Decomposition{Values: d, Vectors: q}, nil
}

// SymValues computes only the eigenvalues (ascending).
func SymValues(a *dense.M64) ([]float64, error) {
	dec, err := Sym(a) // vectors are cheap relative to clarity here
	if err != nil {
		return nil, err
	}
	return dec.Values, nil
}

// tridiagonalize reduces the symmetric a to tridiagonal form
// T = Qᵀ·A·Q via Householder similarity transforms, returning the diagonal
// d, subdiagonal e (length n, e[0] unused), and the accumulated orthogonal
// Q (n×n).
func tridiagonalize(a *dense.M64) (d, e []float64, q *dense.M64) {
	n := a.Rows
	w := a.Clone()
	// Symmetrize from the lower triangle so the two-sided updates below
	// can use full columns.
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			w.Set(j, i, w.At(i, j))
		}
	}
	d = make([]float64, n)
	e = make([]float64, n)
	taus := make([]float64, n)
	vwork := dense.New[float64](n, n) // column k holds the k-th reflector

	for k := 0; k < n-2; k++ {
		col := w.Col(k)
		alpha := col[k+1]
		tail := col[k+2:]
		tau := larfg64(&alpha, tail)
		taus[k] = tau
		e[k+1] = alpha
		if tau != 0 {
			// v = [1, tail] acting on rows/cols k+1..n.
			v := vwork.Col(k)[k+1:]
			v[0] = 1
			copy(v[1:], tail)
			sub := w.View(k+1, k+1, n-k-1, n-k-1)
			// p = τ·A·v ; w = p − (τ/2)(pᵀv)·v ; A ← A − v·wᵀ − w·vᵀ.
			p := make([]float64, n-k-1)
			blas.Gemv(blas.NoTrans, tau, sub, v, 0, p)
			gamma := -0.5 * tau * blas.Dot(p, v)
			blas.Axpy(gamma, v, p)
			blas.Ger(-1, v, p, sub)
			blas.Ger(-1, p, v, sub)
		}
		// Record the tridiagonal entries and clear the eliminated part.
		col[k+1] = e[k+1]
		for i := k + 2; i < n; i++ {
			col[i] = 0
		}
	}
	if n >= 2 {
		e[n-1] = w.At(n-1, n-2)
	}
	for i := 0; i < n; i++ {
		d[i] = w.At(i, i)
	}

	// Accumulate Q = H_0·H_1·…·H_{n-3} by applying reflectors to the
	// identity in reverse.
	q = dense.New[float64](n, n)
	q.SetIdentity()
	for k := n - 3; k >= 0; k-- {
		if taus[k] == 0 {
			continue
		}
		v := vwork.Col(k)[k+1:]
		sub := q.View(k+1, 0, n-k-1, n)
		t := make([]float64, n)
		blas.Gemv(blas.Trans, 1, sub, v, 0, t)
		blas.Ger(-taus[k], v, t, sub)
	}
	return d, e, q
}

func larfg64(alpha *float64, x []float64) float64 {
	xnorm := blas.Nrm2(x)
	if xnorm == 0 {
		return 0
	}
	a := *alpha
	beta := -math.Copysign(math.Hypot(a, xnorm), a)
	tau := (beta - a) / beta
	blas.Scal(1/(a-beta), x)
	*alpha = beta
	return tau
}

// tqli is the implicit QL iteration with Wilkinson-style shifts on the
// tridiagonal (d, e), accumulating the rotations into the columns of z
// (Numerical-Recipes convention: e[0] is unused, e[i] couples i-1 and i).
func tqli(d, e []float64, z *dense.M64) error {
	n := len(d)
	if n <= 1 {
		return nil
	}
	// Shift the subdiagonal for the NR convention.
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find the first decoupled block boundary m >= l.
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-300+2.3e-16*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= 50 {
				return fmt.Errorf("%w (eigenvalue %d)", ErrNoConvergence, l)
			}
			// Wilkinson shift.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Accumulate the rotation into the eigenvector matrix.
				zi, zi1 := z.Col(i), z.Col(i+1)
				for k := range zi {
					f := zi1[k]
					zi1[k] = s*zi[k] + c*f
					zi[k] = c*zi[k] - s*f
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

func sortAscending(d []float64, z *dense.M64) {
	n := len(d)
	for i := 0; i < n; i++ {
		minIdx := i
		for j := i + 1; j < n; j++ {
			if d[j] < d[minIdx] {
				minIdx = j
			}
		}
		if minIdx != i {
			d[i], d[minIdx] = d[minIdx], d[i]
			ci, cm := z.Col(i), z.Col(minIdx)
			for k := range ci {
				ci[k], cm[k] = cm[k], ci[k]
			}
		}
	}
}
