// Package matgen generates the random test matrices used throughout the
// paper's evaluation (Section 4): elementwise uniform and normal matrices,
// and — following MAGMA's latms-style generator the authors used — matrices
// with a prescribed condition number and singular value distribution, built
// as A = U·Σ·Vᵀ with Haar-distributed orthogonal factors.
//
// All generation happens in float64; callers narrow to float32 at the
// boundary of the device they are simulating, the same way the paper's
// experiments hand a well-defined matrix to the GPU.
package matgen

import (
	"fmt"
	"math"
	"math/rand"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/house"
)

// Dist enumerates the singular value distributions of Section 4.2.
type Dist int

const (
	// Geometric spaces log σ_i evenly between 0 and -log κ (matrix type 3).
	Geometric Dist = iota
	// Arithmetic spaces σ_i evenly between 1 and 1/κ (matrix type 4).
	Arithmetic
	// Cluster2 sets every singular value to 1 except the smallest, which is
	// 1/κ (matrix type 5, "SVD cluster2" in Figure 9).
	Cluster2
)

// String returns the paper's name for the distribution.
func (d Dist) String() string {
	switch d {
	case Geometric:
		return "geometric"
	case Arithmetic:
		return "arithmetic"
	case Cluster2:
		return "cluster2"
	}
	return fmt.Sprintf("Dist(%d)", int(d))
}

// SingularValues returns n singular values with σ₁ = 1 and σ_n = 1/cond
// following the given distribution.
func SingularValues(n int, cond float64, dist Dist) []float64 {
	if n < 1 {
		panic("matgen: need at least one singular value")
	}
	if cond < 1 {
		panic(fmt.Sprintf("matgen: condition number %g < 1", cond))
	}
	s := make([]float64, n)
	if n == 1 {
		s[0] = 1
		return s
	}
	switch dist {
	case Geometric:
		// log σ evenly spaced: σ_i = κ^{-i/(n-1)}.
		for i := range s {
			s[i] = math.Pow(cond, -float64(i)/float64(n-1))
		}
	case Arithmetic:
		lo := 1 / cond
		for i := range s {
			t := float64(i) / float64(n-1)
			s[i] = 1 - t*(1-lo)
		}
	case Cluster2:
		for i := range s {
			s[i] = 1
		}
		s[n-1] = 1 / cond
	default:
		panic(fmt.Sprintf("matgen: unknown distribution %d", dist))
	}
	return s
}

// Uniform01 returns an m×n matrix with i.i.d. entries from U(0, 1)
// (matrix type 1a).
func Uniform01(rng *rand.Rand, m, n int) *dense.M64 {
	a := dense.New[float64](m, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	return a
}

// UniformSym returns an m×n matrix with i.i.d. entries from U(-1, 1)
// (matrix type 1b).
func UniformSym(rng *rand.Rand, m, n int) *dense.M64 {
	a := dense.New[float64](m, n)
	for i := range a.Data {
		a.Data[i] = 2*rng.Float64() - 1
	}
	return a
}

// Normal returns an m×n matrix with i.i.d. N(0, 1) entries (matrix type 2).
func Normal(rng *rand.Rand, m, n int) *dense.M64 {
	a := dense.New[float64](m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

// haarApply overwrites c with Q·c where Q is a Haar-distributed r×r
// orthogonal matrix, applied implicitly through the Householder QR of a
// Gaussian matrix (the standard Stewart construction; MAGMA does the same).
func haarApply(rng *rand.Rand, c *dense.M64) {
	r := c.Rows
	k := min(r, c.Cols+8) // enough reflectors to mix every direction used
	if k > r {
		k = r
	}
	g := Normal(rng, r, k)
	tau := house.Geqrf(g, 0)
	house.Ormqr(blas.NoTrans, g, tau, c, 0)
}

// WithSpectrum builds an m×n (m >= n) matrix with the exact singular values
// sigma: A = U·diag(σ)·Vᵀ with Haar factors. Deterministic given rng state.
func WithSpectrum(rng *rand.Rand, m, n int, sigma []float64) *dense.M64 {
	if len(sigma) != n {
		panic(fmt.Sprintf("matgen: %d singular values for %d columns", len(sigma), n))
	}
	if m < n {
		panic(fmt.Sprintf("matgen: WithSpectrum requires m >= n, got %dx%d", m, n))
	}
	// B = V·diag(σ) for Haar V (n×n).
	b := dense.New[float64](n, n)
	for i, s := range sigma {
		b.Set(i, i, s)
	}
	gv := Normal(rng, n, n)
	tauV := house.Geqrf(gv, 0)
	house.Ormqr(blas.NoTrans, gv, tauV, b, 0)
	// C = [Bᵀ; 0] (m×n), then A = U·C for Haar U (m×m, thin columns used).
	c := dense.New[float64](m, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c.Set(i, j, b.At(j, i))
		}
	}
	gu := Normal(rng, m, n)
	tauU := house.Geqrf(gu, 0)
	house.Ormqr(blas.NoTrans, gu, tauU, c, 0)
	return c
}

// WithCond builds an m×n matrix with condition number cond and the given
// singular value distribution — the workhorse generator for Figures 3, 4, 8
// and 9 and Table 4.
func WithCond(rng *rand.Rand, m, n int, cond float64, dist Dist) *dense.M64 {
	return WithSpectrum(rng, m, n, SingularValues(n, cond, dist))
}

// HaarOrthonormal returns an m×n matrix with Haar-distributed orthonormal
// columns.
func HaarOrthonormal(rng *rand.Rand, m, n int) *dense.M64 {
	c := dense.New[float64](m, n)
	c.SetIdentity()
	haarApply(rng, c)
	return c
}

// BadlyScaled returns a well-conditioned matrix whose column norms span
// 10^±decades — the inputs that overflow FP16 without the column scaling
// safeguard of Section 3.5.
func BadlyScaled(rng *rand.Rand, m, n int, decades float64) *dense.M64 {
	a := Normal(rng, m, n)
	for j := 0; j < n; j++ {
		e := (2*rng.Float64() - 1) * decades
		blas.Scal(math.Pow(10, e), a.Col(j))
	}
	return a
}

// LLSProblem is a random over-determined least squares instance. The right
// hand side is b = A·x + r with a residual r orthogonal to range(A) scaled
// to resNorm, so the true minimizer xTrue and minimum residual are known.
type LLSProblem struct {
	A     *dense.M64
	B     []float64
	XTrue []float64
}

// NewLLSProblem builds an LLS instance over the given matrix. resNorm
// controls the size of the incompatible component of b; 0 gives a
// consistent system.
func NewLLSProblem(rng *rand.Rand, a *dense.M64, resNorm float64) *LLSProblem {
	m, n := a.Rows, a.Cols
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, m)
	blas.Gemv(blas.NoTrans, 1, a, x, 0, b)
	if resNorm > 0 {
		// Project a random vector onto the complement of range(A) using a
		// QR of A, then add it scaled to resNorm.
		r := make([]float64, m)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		f := a.Clone()
		tau := house.Geqrf(f, 0)
		// r ← (I - Q_thin·Q_thinᵀ)·r via ormqr: w = Qᵀr, zero first n, r = Q·w... cheaper:
		w := append([]float64(nil), r...)
		house.OrmqrVec(blas.Trans, f, tau, w, 0)
		for i := 0; i < n; i++ {
			w[i] = 0
		}
		house.OrmqrVec(blas.NoTrans, f, tau, w, 0)
		nw := blas.Nrm2(w)
		if nw > 0 {
			blas.Axpy(resNorm/nw, w, b)
		}
	}
	return &LLSProblem{A: a, B: b, XTrue: x}
}
