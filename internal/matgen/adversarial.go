package matgen

import (
	"fmt"
	"math"
	"math/rand"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

// This file holds the adversarial generators: matrices built to trip each
// hazard the pipeline claims to detect — exact rank deficiency, zero
// columns, denormal magnitudes, and entries sitting just below the binary16
// overflow threshold. They feed the bounds-or-hazard property tests: every
// one of these inputs must produce either a bounded factorization or a
// typed error / hazard report, never silent NaN.

// RankDeficient returns an m×n matrix (m >= n) with exact rank r < n,
// built as the product of an m×r and an r×n Gaussian matrix. The trailing
// n−r columns are exact linear combinations of the leading ones, so
// Gram-Schmidt panels meet genuinely dependent directions.
func RankDeficient(rng *rand.Rand, m, n, r int) *dense.M64 {
	if r < 1 || r >= n || m < n {
		panic(fmt.Sprintf("matgen: RankDeficient(%d, %d, rank %d)", m, n, r))
	}
	u := Normal(rng, m, r)
	v := Normal(rng, r, n)
	a := dense.New[float64](m, n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, u, v, 0, a)
	return a
}

// WithZeroColumns returns a Gaussian matrix with the given columns exactly
// zero — the sharpest breakdown input for any normalizing panel (R[j,j]
// is exactly 0, not merely tiny).
func WithZeroColumns(rng *rand.Rand, m, n int, cols ...int) *dense.M64 {
	a := Normal(rng, m, n)
	for _, j := range cols {
		z := a.Col(j)
		for i := range z {
			z[i] = 0
		}
	}
	return a
}

// DenormalScaled returns a Gaussian matrix scaled by 1e-40: every entry is
// subnormal once narrowed to float32 (normal float32 bottoms out at
// ~1.18e-38), and far below the binary16 flush-to-zero threshold. It
// stresses the underflow side of the §3.5 scaling safeguard.
func DenormalScaled(rng *rand.Rand, m, n int) *dense.M64 {
	a := Normal(rng, m, n)
	blas.Scal(1e-40, a.Data)
	return a
}

// SingleHugeEntry returns a Gaussian matrix with one entry set to 65000 —
// just below the binary16 maximum 65504, so the entry itself survives fp16
// rounding but any growth during the factorization pushes past it. The
// entry is placed in the last column so it flows through the trailing-block
// engine GEMMs rather than staying inside the fp32 panel.
func SingleHugeEntry(rng *rand.Rand, m, n int) *dense.M64 {
	a := Normal(rng, m, n)
	a.Set(m/2, n-1, 65000)
	return a
}

// ExponentLadder returns a Gaussian matrix whose column j is scaled by
// 2^e(j), with e(j) stepping linearly from minExp to maxExp across the
// columns. One matrix sweeps the exponent-range edges of the half-precision
// formats: columns near the bottom sit below the fp16 subnormal threshold
// (flush-to-zero territory for the plain engine, and past the point where
// the error-corrected split's 2¹¹-shifted residuals stay fp16-normal),
// while columns near the top approach the 65504 saturation edge. The scales
// are exact powers of two, so the scaling itself is lossless in every
// binary format — any accuracy difference is the engine's, not the
// generator's.
func ExponentLadder(rng *rand.Rand, m, n, minExp, maxExp int) *dense.M64 {
	if n < 1 || maxExp < minExp {
		panic(fmt.Sprintf("matgen: ExponentLadder(%d, %d, %d..%d)", m, n, minExp, maxExp))
	}
	a := Normal(rng, m, n)
	for j := 0; j < n; j++ {
		e := minExp
		if n > 1 {
			e = minExp + j*(maxExp-minExp)/(n-1)
		}
		s := math.Ldexp(1, e)
		col := a.Col(j)
		for i := range col {
			col[i] *= s
		}
	}
	return a
}

// WithNaN returns a Gaussian matrix with a[i,j] = NaN, for input-validation
// tests.
func WithNaN(rng *rand.Rand, m, n, i, j int) *dense.M64 {
	a := Normal(rng, m, n)
	a.Set(i, j, math.NaN())
	return a
}

// WithInf returns a Gaussian matrix with a[i,j] = +Inf.
func WithInf(rng *rand.Rand, m, n, i, j int) *dense.M64 {
	a := Normal(rng, m, n)
	a.Set(i, j, math.Inf(1))
	return a
}
