package matgen

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
)

func TestSingularValuesShapes(t *testing.T) {
	for _, dist := range []Dist{Geometric, Arithmetic, Cluster2} {
		s := SingularValues(10, 1e4, dist)
		if s[0] != 1 {
			t.Errorf("%v: σ₁ = %v, want 1", dist, s[0])
		}
		if math.Abs(s[9]-1e-4) > 1e-12 {
			t.Errorf("%v: σ_n = %v, want 1e-4", dist, s[9])
		}
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1] {
				t.Errorf("%v: singular values not non-increasing at %d", dist, i)
			}
		}
	}
	// Geometric: ratios constant.
	s := SingularValues(5, 1e4, Geometric)
	for i := 1; i < 4; i++ {
		r1 := s[i] / s[i-1]
		r2 := s[i+1] / s[i]
		if math.Abs(r1-r2) > 1e-12 {
			t.Errorf("geometric ratios differ: %v vs %v", r1, r2)
		}
	}
	// Arithmetic: differences constant.
	s = SingularValues(5, 1e4, Arithmetic)
	for i := 1; i < 4; i++ {
		d1 := s[i-1] - s[i]
		d2 := s[i] - s[i+1]
		if math.Abs(d1-d2) > 1e-12 {
			t.Errorf("arithmetic gaps differ: %v vs %v", d1, d2)
		}
	}
	// Cluster2: all ones except last.
	s = SingularValues(6, 1e3, Cluster2)
	for i := 0; i < 5; i++ {
		if s[i] != 1 {
			t.Errorf("cluster2 σ_%d = %v", i, s[i])
		}
	}
	// Single value.
	if s := SingularValues(1, 1e6, Geometric); s[0] != 1 {
		t.Errorf("n=1: %v", s)
	}
	if Geometric.String() != "geometric" || Cluster2.String() != "cluster2" {
		t.Error("Dist.String wrong")
	}
}

func TestElementwiseGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform01(rng, 50, 40)
	var mean float64
	for _, v := range u.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("Uniform01 out of range: %v", v)
		}
		mean += v
	}
	mean /= float64(len(u.Data))
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("Uniform01 mean %v", mean)
	}
	s := UniformSym(rng, 50, 40)
	for _, v := range s.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("UniformSym out of range: %v", v)
		}
	}
	n := Normal(rng, 80, 50)
	var m2 float64
	for _, v := range n.Data {
		m2 += v * v
	}
	m2 /= float64(len(n.Data))
	if math.Abs(m2-1) > 0.1 {
		t.Errorf("Normal variance %v", m2)
	}
}

func orthoErr(q *dense.M64) float64 {
	g := dense.New[float64](q.Cols, q.Cols)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, q, q, 0, g)
	for i := 0; i < q.Cols; i++ {
		g.Set(i, i, g.At(i, i)-1)
	}
	return dense.NormFro(g)
}

func TestHaarOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := HaarOrthonormal(rng, 60, 20)
	if e := orthoErr(q); e > 1e-13 {
		t.Errorf("Haar columns not orthonormal: %g", e)
	}
}

func TestWithSpectrumExactSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sigma := []float64{5, 3, 1, 0.5, 0.01}
	a := WithSpectrum(rng, 30, 5, sigma)
	// Frobenius norm equals ‖σ‖₂.
	wantFro := blas.Nrm2(sigma)
	if got := dense.NormFro(a); math.Abs(got-wantFro)/wantFro > 1e-12 {
		t.Errorf("‖A‖_F = %v, want %v", got, wantFro)
	}
	// Spectral norm equals σ₁.
	if got := dense.Norm2Est(a, 100); math.Abs(got-5)/5 > 1e-6 {
		t.Errorf("‖A‖₂ = %v, want 5", got)
	}
	// Product of squared singular values: det(AᵀA) = Π σᵢ².
	g := dense.New[float64](5, 5)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, a, a, 0, g)
	det := detViaGauss(g)
	want := 1.0
	for _, s := range sigma {
		want *= s * s
	}
	if math.Abs(det-want)/want > 1e-8 {
		t.Errorf("det(AᵀA) = %v, want %v", det, want)
	}
}

func detViaGauss(a *dense.M64) float64 {
	n := a.Rows
	m := a.Clone()
	det := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot.
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(m.At(i, k)) > math.Abs(m.At(p, k)) {
				p = i
			}
		}
		if p != k {
			det = -det
			for j := 0; j < n; j++ {
				v1, v2 := m.At(k, j), m.At(p, j)
				m.Set(k, j, v2)
				m.Set(p, j, v1)
			}
		}
		piv := m.At(k, k)
		det *= piv
		if piv == 0 {
			return 0
		}
		for i := k + 1; i < n; i++ {
			f := m.At(i, k) / piv
			for j := k; j < n; j++ {
				m.Set(i, j, m.At(i, j)-f*m.At(k, j))
			}
		}
	}
	return det
}

func TestWithCondConditionNumber(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := WithCond(rng, 40, 8, 1e3, Geometric)
	// σmax = 1.
	if got := dense.Norm2Est(a, 200); math.Abs(got-1) > 1e-6 {
		t.Errorf("σ₁ = %v, want 1", got)
	}
	// det(AᵀA) should equal Π σᵢ² for geometric distribution.
	g := dense.New[float64](8, 8)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, a, a, 0, g)
	sig := SingularValues(8, 1e3, Geometric)
	want := 1.0
	for _, s := range sig {
		want *= s * s
	}
	got := detViaGauss(g)
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("det = %g, want %g", got, want)
	}
}

func TestBadlyScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := BadlyScaled(rng, 100, 30, 8)
	var minN, maxN float64 = math.Inf(1), 0
	for j := 0; j < 30; j++ {
		n := blas.Nrm2(a.Col(j))
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if maxN/minN < 1e6 {
		t.Errorf("column norm spread only %g", maxN/minN)
	}
}

func TestNewLLSProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Normal(rng, 60, 10)

	// Consistent system: residual at xTrue is 0.
	p := NewLLSProblem(rng, a, 0)
	r := append([]float64(nil), p.B...)
	blas.Gemv(blas.NoTrans, -1, a, p.XTrue, 1, r)
	if n := blas.Nrm2(r); n > 1e-12 {
		t.Errorf("consistent problem residual %g", n)
	}

	// Inconsistent system: residual has the requested norm and is
	// orthogonal to range(A) (so Aᵀr ≈ 0 at the minimizer).
	p2 := NewLLSProblem(rng, a, 0.5)
	r2 := append([]float64(nil), p2.B...)
	blas.Gemv(blas.NoTrans, -1, a, p2.XTrue, 1, r2)
	if n := blas.Nrm2(r2); math.Abs(n-0.5) > 1e-10 {
		t.Errorf("residual norm %v, want 0.5", n)
	}
	atr := make([]float64, 10)
	blas.Gemv(blas.Trans, 1, a, r2, 0, atr)
	if n := blas.Nrm2(atr); n > 1e-10 {
		t.Errorf("residual not orthogonal to range(A): ‖Aᵀr‖ = %g", n)
	}
}

func TestDeterminism(t *testing.T) {
	a := WithCond(rand.New(rand.NewSource(7)), 20, 6, 100, Arithmetic)
	b := WithCond(rand.New(rand.NewSource(7)), 20, 6, 100, Arithmetic)
	if !dense.Equal(a, b) {
		t.Error("same seed must reproduce the same matrix")
	}
}
