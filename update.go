package tcqr

import (
	"fmt"
	"math"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/hazard"
)

// This file implements incremental QR: appending rows to an existing
// factorization (update) and removing trailing rows (downdate) without the
// full O(mn²) refactorization — the "online least squares" workload from
// ROADMAP item 5.
//
// Append: with A = Q·R and a new row block V (k×n),
//
//	[A]   [Q 0] [R]          [R]
//	[V] = [0 I]·[V]   and    [V] = Q̂·R′  (structured Householder),
//
// so [A;V] = ([Q 0;0 I]·Q̂)·R′ = [Q·Q̂₁; Q̂₂]·R′. Each Householder
// reflector for column j only touches row j of R and the k appended rows
// (everything below the diagonal of the R block is already zero), so
// annihilating V costs O(kn²) instead of O((m+k)n²), and the explicit-Q
// contract is met by applying the same structured reflectors to [Q 0; 0 I]
// in compact-WY blocks at O(m·n·k) — never forming Q̂, whose dense product
// with Q would cost the same O(m·n²) as refactorizing. All interior
// arithmetic runs in float64 and narrows to the device precision at the end,
// so the update rung sits inside the mixed-precision error budget of the
// serial factorization (Yang/Fox/Sanders bound the blocked Householder rung).
//
// Downdate: LINPACK dchdd-style. Removing row b from A downdates the
// Cholesky view R′ᵀR′ = RᵀR − bᵀb: solve Rᵀa = b, α² = 1 − ‖a‖² (breakdown
// when ≤ 0 — the removed rows carry all the remaining column mass), then a
// backward sweep of Givens rotations maps [R; 0] to [R′; *]. Q is recovered
// as Q′ = A′·R′⁻¹ = Q₁·(R·R′⁻¹) via a triangular solve plus one GEMM.

// UpdateAppendRows returns the factorization of [A; V] given f = Q·R of A
// and a new row block v (k×n, n = f.R.Cols). The inputs are not modified;
// the result is a fresh Factorization (its Q and R share no storage with f).
//
// Hazards follow cfg.OnHazard exactly like Factorize: under HazardFail a
// non-finite update returns an error wrapping ErrNonFinite; under
// HazardFallback the ladder retries with power-of-two column scaling of the
// bordered block, then falls back to a full refactorization of the
// reconstructed [Q·R; V], recording every rung in Factorization.Hazards.
//
// The result carries nil ColumnScales (R′ is expressed for the unscaled
// rows, matching the Factorize contract) and zero EngineStats: the update
// runs in float64 off the simulated engine.
func UpdateAppendRows(f *Factorization, v *Matrix32, cfg Config) (*Factorization, error) {
	if err := checkUpdateInputs(f, v); err != nil {
		return nil, err
	}
	rep := &hazard.Report{}
	nf, err := appendOnce(f, v, false)
	if err != nil && cfg.OnHazard == HazardFallback {
		rep.Record(hazard.Event{
			Kind:   classify(err),
			Stage:  "update",
			Detail: err.Error(),
			Action: "retry update with column scaling",
		})
		nf, err = appendOnce(f, v, true)
		if err != nil {
			rep.Record(hazard.Event{
				Kind:   classify(err),
				Stage:  "update",
				Detail: err.Error(),
				Action: "refactorize appended matrix from scratch",
			})
			nf, err = refactorizeAppended(f, v, cfg, rep)
		}
	}
	if err != nil {
		return nil, err
	}
	nf.Hazards = rep.Events()
	return nf, nil
}

// UpdateAppendRow is the rank-1 convenience wrapper: append a single row.
func UpdateAppendRow(f *Factorization, row []float32, cfg Config) (*Factorization, error) {
	if f == nil || f.R == nil {
		return nil, fmt.Errorf("tcqr: update of a nil factorization: %w", ErrEmpty)
	}
	if len(row) != f.R.Cols {
		return nil, fmt.Errorf("tcqr: appended row has %d elements; factorization has %d columns: %w",
			len(row), f.R.Cols, ErrShape)
	}
	v := NewMatrix32(1, len(row))
	for j, x := range row {
		v.Set(0, j, x)
	}
	return UpdateAppendRows(f, v, cfg)
}

// UpdateRemoveRows returns the factorization of A with its trailing k rows
// removed, given f = Q·R of A. The inputs are not modified.
//
// A downdate is numerically harder than an update: when the removed rows
// carry essentially all of a column's mass, α² = 1 − ‖a‖² is non-positive
// and the downdate breaks down. Under HazardFail that returns an error
// wrapping ErrBreakdown; under HazardFallback the remaining matrix is
// reconstructed as Q₁·R and refactorized from scratch, with the recovery
// recorded in Factorization.Hazards.
func UpdateRemoveRows(f *Factorization, k int, cfg Config) (*Factorization, error) {
	if f == nil || f.Q == nil || f.R == nil {
		return nil, fmt.Errorf("tcqr: downdate of a nil factorization: %w", ErrEmpty)
	}
	m, n := f.Q.Rows, f.Q.Cols
	if k <= 0 {
		return nil, fmt.Errorf("tcqr: downdate of %d rows: %w", k, ErrShape)
	}
	if m-k < n {
		return nil, fmt.Errorf("tcqr: removing %d of %d rows leaves fewer rows than the %d columns: %w",
			k, m, n, ErrShape)
	}
	rep := &hazard.Report{}
	nf, err := downdateOnce(f, k)
	if err != nil && cfg.OnHazard == HazardFallback {
		rep.Record(hazard.Event{
			Kind:   classify(err),
			Stage:  "downdate",
			Detail: err.Error(),
			Action: "refactorize remaining rows from scratch",
		})
		nf, err = refactorizeRemaining(f, k, cfg, rep)
	}
	if err != nil {
		return nil, err
	}
	nf.Hazards = rep.Events()
	return nf, nil
}

// checkUpdateInputs validates the append inputs with the standard typed
// errors.
func checkUpdateInputs(f *Factorization, v *Matrix32) error {
	if f == nil || f.Q == nil || f.R == nil {
		return fmt.Errorf("tcqr: update of a nil factorization: %w", ErrEmpty)
	}
	if err := hazard.CheckMatrix("V", v); err != nil {
		return fmt.Errorf("tcqr: %w", err)
	}
	if v.Cols != f.R.Cols {
		return fmt.Errorf("tcqr: appended block is %dx%d; factorization has %d columns: %w",
			v.Rows, v.Cols, f.R.Cols, ErrShape)
	}
	return nil
}

// appendOnce runs one rung of the append ladder: the structured bordered
// Householder in float64, optionally on a power-of-two column-scaled copy of
// the bordered block (exactly undone on R′ afterwards — scaling never
// changes the represented matrix, only the conditioning of intermediates).
func appendOnce(f *Factorization, v *Matrix32, scale bool) (*Factorization, error) {
	n := f.R.Cols
	k := v.Rows
	rd := dense.ToF64(f.R) // becomes R′
	w := dense.ToF64(v)    // appended block, annihilated in place
	var scales []float64
	if scale {
		scales = scaleBordered(rd, w)
	}

	// Annihilate W column by column. Reflector j is H = I − τ·u·uᵀ with
	// u = [e_j; z_j]: it touches only row j of the R block plus the k
	// appended rows, because rows j+1..n−1 of column j are already zero.
	z := dense.New[float64](k, n)
	tau := make([]float64, n)
	for j := 0; j < n; j++ {
		wj := w.Col(j)
		sigma := blas.Dot(wj, wj)
		if sigma == 0 {
			continue // column already annihilated; H_j = I
		}
		alpha := rd.At(j, j)
		mu := math.Sqrt(alpha*alpha + sigma)
		beta := -mu
		if alpha < 0 {
			beta = mu
		}
		v0 := alpha - beta
		tau[j] = (beta - alpha) / beta
		zj := z.Col(j)
		for i, x := range wj {
			zj[i] = x / v0
		}
		rd.Set(j, j, beta)
		for jj := j + 1; jj < n; jj++ {
			wc := w.Col(jj)
			t := tau[j] * (rd.At(j, jj) + blas.Dot(zj, wc))
			rd.Set(j, jj, rd.At(j, jj)-t)
			blas.Axpy(-t, zj, wc)
		}
	}
	if scales != nil {
		unscaleR(rd, scales)
	}

	// Canonicalize R′ to a non-negative diagonal (the TSQR convention) now —
	// the annihilation is complete, so the sign of each Q′ column is known
	// before the Q update runs and can be folded into the narrowing below.
	flip := make([]bool, n)
	for j := 0; j < n; j++ {
		if rd.At(j, j) < 0 {
			flip[j] = true
			for jj := j; jj < n; jj++ {
				rd.Set(j, jj, -rd.At(j, jj))
			}
		}
	}

	// Q′ = [Q 0; 0 I_k]·H_0⋯H_{n−1}, restricted to the first n columns.
	// Forming Q̂ = H_0⋯H_{n−1}·[I_n; 0] and multiplying would cost an
	// O(m·n²) GEMM — the same order as refactorizing, which is why the
	// explicit product was the whole update's bottleneck. Instead apply the
	// reflectors in compact-WY blocks: u_j = [e_j; z_j] is zero outside
	// position j and the k appended coordinates, so a block of nb reflectors
	// is I − U·T·Uᵀ with U = [E_blk; Z_blk]. Right-multiplying touches only
	// the block's own Q columns (read and written exactly once, as
	// P = [Q_blk; 0]·T + B·(Z_blk·T) and Q′_blk = [Q_blk; 0] − P) plus the
	// k-column tail block B — the only live state across blocks. Every
	// product has inner dimension k or nb, so the whole Q update is
	// O((m+k)·n·(k+nb)). The reflector generation above stays float64; this
	// application runs in float32 — the accumulation depth per element is
	// only k+nb, so its rounding sits well inside the float32 factor
	// quality, and it halves memory traffic while doubling SIMD width.
	m := f.Q.Rows
	z32 := dense.New[float32](k, n)
	for j := 0; j < n; j++ {
		c32 := z32.Col(j)
		for i, v := range z.Col(j) {
			c32[i] = float32(v)
		}
	}
	nb := 16
	if nb > n {
		nb = n
	}
	// ub = [B | Q_blk]: the persistent tail block B (starts as [0; I_k],
	// updated in place through its column view) shares one GEMM operand with
	// the block's Q columns (refilled each block, bottom k rows permanently
	// zero), so P = B·(Z_blk·T) + [Q_blk; 0]·T is a single product against
	// rb = [Z_blk·T; T] instead of two. B leads so the operand view stays
	// contiguous when the last block is narrower than nb.
	ub := dense.New[float32](m+k, k+nb)
	bt := ub.View(0, 0, m+k, k)
	for c := 0; c < k; c++ {
		bt.Col(c)[m+c] = 1
	}
	tb := dense.New[float64](nb, nb)
	rb := dense.New[float32](k+nb, nb)
	py := dense.New[float32](m+k, nb)
	s := make([]float64, nb)
	nq := dense.New[float32](m+k, n)
	qFinite := true
	for j0 := 0; j0 < n; j0 += nb {
		j1 := j0 + nb
		if j1 > n {
			j1 = n
		}
		cb := j1 - j0
		// T for H_{j0}⋯H_{j1−1} (forward columnwise larft): T[b][b] = τ_b,
		// T[0:b, b] = T[0:b, 0:b]·(−τ_b·Z_prevᵀ·z_b) — the e_j parts of the
		// u's are orthonormal, so cross terms reduce to Z dots.
		for b := 0; b < cb; b++ {
			zb := z.Col(j0 + b)
			for a := 0; a < b; a++ {
				s[a] = -tau[j0+b] * blas.Dot(z.Col(j0+a), zb)
			}
			for a := 0; a < b; a++ {
				acc := 0.0
				for l := a; l < b; l++ {
					acc += tb.At(a, l) * s[l]
				}
				tb.Set(a, b, acc)
			}
			tb.Set(b, b, tau[j0+b])
			for a := 0; a <= b; a++ {
				rb.Set(k+a, b, float32(tb.At(a, b)))
			}
			for a := b + 1; a < cb; a++ {
				rb.Set(k+a, b, 0)
			}
		}
		zv := z32.View(0, j0, k, cb)
		ztv := rb.View(0, 0, k, cb)
		blas.Gemm(blas.NoTrans, blas.NoTrans, 1, zv, rb.View(k, 0, cb, cb), 0, ztv)
		qv := ub.View(0, k, m+k, cb)
		for c := 0; c < cb; c++ {
			copy(qv.Col(c), f.Q.Col(j0+c))
		}
		pv := py.View(0, 0, m+k, cb)
		blas.Gemm(blas.NoTrans, blas.NoTrans, 1, ub.View(0, 0, m+k, k+cb), rb.View(0, 0, k+cb, cb), 0, pv)
		// Column j0+c of Q′ is final: [Q_blk; 0] − P, narrowed with its
		// canonicalization sign. The finite check rides along while the
		// column is cache-hot (v − v is 0 for finite v, NaN otherwise)
		// instead of re-scanning Q′ cold afterwards. Then B ← B − P·Z_blkᵀ
		// for the next block (B is dead after the last one).
		for c := 0; c < cb; c++ {
			qc, pc, col := qv.Col(c), pv.Col(c), nq.Col(j0+c)
			var bad float32
			if flip[j0+c] {
				for i := range col {
					v := pc[i] - qc[i]
					col[i] = v
					bad += v - v
				}
			} else {
				for i := range col {
					v := qc[i] - pc[i]
					col[i] = v
					bad += v - v
				}
			}
			if bad != 0 {
				qFinite = false
			}
		}
		if j1 < n {
			blas.Gemm(blas.NoTrans, blas.Trans, -1, pv, zv, 1, bt)
		}
	}
	nf := &Factorization{Q: nq, R: dense.ToF32(rd)}
	if !qFinite || !hazard.MatrixFinite(nf.R) {
		return nil, fmt.Errorf("tcqr: updated factors are non-finite: %w", ErrNonFinite)
	}
	return nf, nil
}

// scaleBordered scales column j of both bordered blocks by a power of two
// chosen from the column's max magnitude, returning the scales applied.
func scaleBordered(r, w *dense.Matrix[float64]) []float64 {
	n := r.Cols
	scales := make([]float64, n)
	for j := 0; j < n; j++ {
		max := 0.0
		for _, x := range r.Col(j)[:j+1] {
			if a := math.Abs(x); a > max {
				max = a
			}
		}
		for _, x := range w.Col(j) {
			if a := math.Abs(x); a > max {
				max = a
			}
		}
		s := 1.0
		if max > 0 && !math.IsInf(max, 0) {
			_, exp := math.Frexp(max)
			s = math.Ldexp(1, -exp) // power of two: scaling is exact
		}
		scales[j] = s
		if s != 1 {
			blas.Scal(s, r.Col(j)[:j+1])
			blas.Scal(s, w.Col(j))
		}
	}
	return scales
}

// unscaleR undoes scaleBordered on the updated R′ (exact: powers of two).
func unscaleR(r *dense.Matrix[float64], scales []float64) {
	for j, s := range scales {
		if s != 1 {
			blas.Scal(1/s, r.Col(j)[:j+1])
		}
	}
}

// downdateBreakdownTol is the α² floor below which a downdate is declared
// broken down: the float32 factors carry O(2⁻²⁴) relative error, so a
// residual mass within a small multiple of that is indistinguishable from
// zero.
const downdateBreakdownTol = 32.0 / (1 << 24)

// downdateOnce removes the trailing k rows with k successive dchdd sweeps
// and recovers Q′ = Q₁·(R·R′⁻¹).
func downdateOnce(f *Factorization, k int) (*Factorization, error) {
	m, n := f.Q.Rows, f.Q.Cols
	qd := dense.ToF64(f.Q)
	r0 := dense.ToF64(f.R) // pristine R for the Q recovery solve
	rd := r0.Clone()       // downdated in place to R′

	// The removed rows in the coordinates of the unscaled A: B = Q₂·R.
	q2 := qd.View(m-k, 0, k, n)
	b := dense.New[float64](k, n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, q2, r0, 0, b)

	s := make([]float64, n)
	cs := make([]float64, n)
	sn := make([]float64, n)
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			s[j] = b.At(i, j)
		}
		// Solve Rᵀa = b for the current (already downdated) R.
		blas.Trsv(blas.Upper, blas.Trans, blas.NonUnit, rd, s)
		norm2 := blas.Dot(s, s)
		// Breakdown when α² = 1 − ‖a‖² is non-positive — or merely inside
		// the noise floor of the float32 factors (O(2⁻²⁴) relative error):
		// an α² that small cannot be distinguished from zero, and the
		// rotations it generates would be garbage. !(… > tol) also catches
		// NaN.
		if !(1-norm2 > downdateBreakdownTol) {
			return nil, fmt.Errorf("tcqr: downdate breakdown at removed row %d (‖a‖² = %g): %w",
				i, norm2, ErrBreakdown)
		}
		alpha := math.Sqrt(1 - norm2)
		for ii := n - 1; ii >= 0; ii-- {
			sc := alpha + math.Abs(s[ii])
			a, x := alpha/sc, s[ii]/sc
			nrm := math.Sqrt(a*a + x*x)
			cs[ii] = a / nrm
			sn[ii] = x / nrm
			alpha = sc * nrm
		}
		for j := 0; j < n; j++ {
			col := rd.Col(j)
			xx := 0.0
			for ii := j; ii >= 0; ii-- {
				t := cs[ii]*xx + sn[ii]*col[ii]
				col[ii] = cs[ii]*col[ii] - sn[ii]*xx
				xx = t
			}
		}
	}
	// Canonicalize R′ to a non-negative diagonal (row sign flips — absorbed
	// by the Q recovery below) and reject a singular diagonal before the
	// triangular solve divides by it.
	for j := 0; j < n; j++ {
		if rd.At(j, j) == 0 {
			return nil, fmt.Errorf("tcqr: downdated R is singular at column %d: %w", j, ErrBreakdown)
		}
	}
	for i := 0; i < n; i++ {
		if rd.At(i, i) < 0 {
			for j := i; j < n; j++ {
				rd.Set(i, j, -rd.At(i, j))
			}
		}
	}

	// Q′ = Q₁·M with M·R′ = R.
	msolve := r0 // overwritten by Trsm
	blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, rd, msolve)
	q1 := qd.View(0, 0, m-k, n)
	qn := dense.New[float64](m-k, n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, q1, msolve, 0, qn)

	nf := &Factorization{Q: dense.ToF32(qn), R: dense.ToF32(rd)}
	if !hazard.MatrixFinite(nf.Q) || !hazard.MatrixFinite(nf.R) {
		return nil, fmt.Errorf("tcqr: downdated factors are non-finite: %w", ErrNonFinite)
	}
	return nf, nil
}

// refactorizeAppended is the last append rung: reconstruct [Q·R; V] in
// float32 and run the full factorization ladder on it.
func refactorizeAppended(f *Factorization, v *Matrix32, cfg Config, rep *hazard.Report) (*Factorization, error) {
	m, n := f.Q.Rows, f.Q.Cols
	k := v.Rows
	a := reconstructRows(f, 0, m)
	full := dense.New[float32](m+k, n)
	for j := 0; j < n; j++ {
		col := full.Col(j)
		copy(col, a.Col(j))
		copy(col[m:], v.Col(j))
	}
	nf, err := Factorize(full, cfg)
	if err != nil {
		return nil, err
	}
	for _, h := range nf.Hazards {
		rep.Record(h)
	}
	return nf, nil
}

// refactorizeRemaining is the downdate fallback rung: reconstruct Q₁·R and
// run the full factorization ladder on it.
func refactorizeRemaining(f *Factorization, k int, cfg Config, rep *hazard.Report) (*Factorization, error) {
	a := reconstructRows(f, 0, f.Q.Rows-k)
	nf, err := Factorize(a, cfg)
	if err != nil {
		return nil, err
	}
	for _, h := range nf.Hazards {
		rep.Record(h)
	}
	return nf, nil
}

// reconstructRows rebuilds rows [i0, i0+rows) of A = Q·R in float32 via a
// float64 GEMM.
func reconstructRows(f *Factorization, i0, rows int) *Matrix32 {
	n := f.Q.Cols
	qd := dense.ToF64(f.Q).View(i0, 0, rows, n)
	rd := dense.ToF64(f.R)
	ad := dense.New[float64](rows, n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, qd, rd, 0, ad)
	return dense.ToF32(ad)
}
