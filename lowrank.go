package tcqr

import (
	"fmt"

	"tcqr/internal/svd"
)

// LowRankApprox is a truncated SVD A ≈ U·diag(S)·Vᵀ computed by the QR-SVD
// algorithm of Section 3.4.
type LowRankApprox struct {
	// U has orthonormal columns (m×rank).
	U *Matrix32
	// S holds the leading singular values, descending.
	S []float32
	// V has orthonormal columns (n×rank).
	V *Matrix32
	// Rank is the truncation rank actually used (≤ requested).
	Rank int
	// Hazards lists numerical hazards detected (and, under HazardFallback,
	// recovered from) during the QR stage.
	Hazards []Hazard
	full    *svd.TallSVD
}

// LowRank computes the optimal rank-r approximation of a tall-skinny
// matrix a (m×n, m >= n, r <= n) via RGSQRF + Jacobi SVD of R + truncation.
// Per the paper, the fp16 roundoff of the QR stage is dwarfed by the
// truncation error, so no refinement is needed — this is the cheapest
// profitable use of the neural engine. Input validation and hazard handling
// follow Factorize (typed errors under HazardFail, the recovery ladder
// under HazardFallback).
func LowRank(a *Matrix32, rank int, cfg Config) (*LowRankApprox, error) {
	if rank < 1 {
		return nil, fmt.Errorf("tcqr: rank %d < 1: %w", rank, ErrShape)
	}
	f, err := Factorize(a, cfg)
	if err != nil {
		return nil, err
	}
	if rank > a.Cols {
		rank = a.Cols
	}
	t, err := svd.QRSVDWithFactor(f.inner())
	if err != nil {
		return nil, err
	}
	return &LowRankApprox{
		U:       t.U.View(0, 0, t.U.Rows, rank).Clone(),
		S:       append([]float32(nil), t.S[:rank]...),
		V:       t.V.View(0, 0, t.V.Rows, rank).Clone(),
		Rank:    rank,
		Hazards: f.Hazards,
		full:    t,
	}, nil
}

// Error returns the relative approximation error ‖A − U·Σ·Vᵀ‖_F/‖A‖_F
// against the original matrix (the Table 4 metric), in float64.
func (l *LowRankApprox) Error(a *Matrix32) float64 {
	return l.full.TruncationError(a, l.Rank)
}

// Reconstruct materializes the rank-Rank approximation as a dense matrix.
func (l *LowRankApprox) Reconstruct() *Matrix32 {
	return svd.ReconstructRank(l.full.U, l.full.S, l.full.V, l.Rank)
}

// SingularValues computes all n singular values of a by QR-SVD (no
// truncation), useful for spectrum inspection.
func SingularValues(a *Matrix32, cfg Config) ([]float32, error) {
	f, err := Factorize(a, cfg)
	if err != nil {
		return nil, err
	}
	t, err := svd.QRSVDWithFactor(f.inner())
	if err != nil {
		return nil, err
	}
	return t.S, nil
}
