package tcqr

import (
	"fmt"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/eig"
)

// EigenDecomposition is A = V·diag(Values)·Vᵀ for a symmetric A, with
// Values ascending.
type EigenDecomposition struct {
	Values  []float64
	Vectors *Matrix
}

// SymmetricEigen computes the full eigendecomposition of a symmetric
// matrix by the QR-algorithm pipeline (Householder tridiagonalization +
// implicit QL with shifts), in float64. Only the lower triangle of a is
// referenced. It rounds out the paper's list of QR applications and
// serves as the exact reference for the spectral examples.
func SymmetricEigen(a *Matrix) (*EigenDecomposition, error) {
	dec, err := eig.Sym(a)
	if err != nil {
		return nil, err
	}
	return &EigenDecomposition{Values: dec.Values, Vectors: dec.Vectors}, nil
}

// RayleighRitz estimates the dominant eigenpairs of the symmetric operator
// applyA restricted to the subspace spanned by the orthonormal columns of
// q (e.g. from Orthonormalize over a Krylov basis): it forms H = Qᵀ·A·Q
// and eigensolves it, returning Ritz values descending. This is the
// subspace-projection pattern the paper's orthogonalization application
// (Section 3.3) exists to enable.
func RayleighRitz(q *Matrix32, applyA func(dst, src []float64)) ([]float64, error) {
	m, k := q.Rows, q.Cols
	if k == 0 {
		return nil, fmt.Errorf("tcqr: empty basis")
	}
	// AQ in float64 (the projection is the accuracy-critical step).
	q64 := dense.ToF64(q)
	aq := dense.New[float64](m, k)
	for j := 0; j < k; j++ {
		applyA(aq.Col(j), q64.Col(j))
	}
	h := dense.New[float64](k, k)
	blas.Gemm(blas.Trans, blas.NoTrans, 1, q64, aq, 0, h)
	// Symmetrize against rounding before the symmetric solver.
	for j := 0; j < k; j++ {
		for i := 0; i < j; i++ {
			v := 0.5 * (h.At(i, j) + h.At(j, i))
			h.Set(i, j, v)
			h.Set(j, i, v)
		}
	}
	dec, err := eig.Sym(h)
	if err != nil {
		return nil, err
	}
	// Descending for "dominant-first" reporting.
	out := make([]float64, k)
	for i := range out {
		out[i] = dec.Values[k-1-i]
	}
	return out, nil
}
