package tcqr

import (
	"errors"
	"math/rand"
	"testing"

	"tcqr/internal/faultinject"
	"tcqr/internal/matgen"
)

// tallBattery runs FactorizeTall with a 64-row canonical partition so every
// 256×64 battery matrix exercises real block parallelism (4 blocks, 2
// reduction levels).
var tallBattery = TallOptions{BlockRows: 64, Workers: 4}

// TestTallAdversarialBattery holds the TSQR pipeline to exactly the "no
// silent garbage" property and bounds of the serial adversarial battery
// (TestAdversarialBattery): same generators, both hazard policies, typed
// error or finite factors with backward error <= 5e-3.
func TestTallAdversarialBattery(t *testing.T) {
	const m, n = 256, 64
	rng := rand.New(rand.NewSource(22))
	cases := []struct {
		name string
		a    *Matrix
	}{
		{"rank-deficient", matgen.RankDeficient(rng, m, n, n/2)},
		{"zero-columns", matgen.WithZeroColumns(rng, m, n, 0, n/2, n-1)},
		{"cond-1e8", matgen.WithCond(rng, m, n, 1e8, matgen.Geometric)},
		{"denormal-scaled", matgen.DenormalScaled(rng, m, n)},
		{"single-huge-entry", matgen.SingleHugeEntry(rng, m, n)},
		{"badly-scaled", matgen.BadlyScaled(rng, m, n, 7)},
	}
	for _, tc := range cases {
		for _, pol := range []HazardPolicy{HazardFail, HazardFallback} {
			t.Run(tc.name+"/"+pol.String(), func(t *testing.T) {
				a := ToFloat32(tc.a)
				f, err := FactorizeTall(a, tallBattery, Config{Cutoff: 32, OnHazard: pol})
				if err != nil {
					if !isTypedHazard(err) {
						t.Fatalf("untyped error: %v", err)
					}
					return // a typed refusal satisfies the property
				}
				assertFinite(t, f.Q.Data, "Q")
				assertFinite(t, f.R.Data, "R")
				if be := f.BackwardError(a); !(be <= 5e-3) {
					t.Errorf("backward error %g, want <= 5e-3", be)
				}
				if f.TSQR == nil || f.TSQR.Blocks != 4 {
					t.Errorf("TSQR info = %+v, want 4 blocks", f.TSQR)
				}
			})
		}
	}
}

// TestTallHazardParity pins that hazard-ladder recoveries surface
// identically through the TSQR path on the engine-independent breakdown
// scenario (exact zero columns break every Gram-Schmidt panel in every
// partition): same typed error under HazardFail, same recovery shape under
// HazardFallback. Engine-overflow hazards are deliberately out of scope —
// the TSQR pipeline is all-FP32, so fp16 saturation cannot occur on it by
// construction (see DESIGN.md §13).
func TestTallHazardParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := ToFloat32(matgen.WithZeroColumns(rng, 256, 64, 10))

	_, serialErr := Factorize(a, Config{Cutoff: 32})
	_, tallErr := FactorizeTall(a, tallBattery, Config{Cutoff: 32})
	if !errors.Is(serialErr, ErrBreakdown) || !errors.Is(tallErr, ErrBreakdown) {
		t.Fatalf("HazardFail parity broken: serial=%v tall=%v, want ErrBreakdown from both", serialErr, tallErr)
	}

	serial, err := Factorize(a, Config{Cutoff: 32, OnHazard: HazardFallback})
	if err != nil {
		t.Fatalf("serial ladder did not recover: %v", err)
	}
	tall, err := FactorizeTall(a, tallBattery, Config{Cutoff: 32, OnHazard: HazardFallback})
	if err != nil {
		t.Fatalf("TSQR ladder did not recover: %v", err)
	}
	for _, f := range []*Factorization{serial, tall} {
		found := false
		for _, h := range f.Hazards {
			if h.Kind == HazardBreakdown && h.Action != "" {
				found = true
			}
		}
		if !found {
			t.Errorf("recovery not recorded as a breakdown escalation: %+v", f.Hazards)
		}
	}
	assertFinite(t, tall.Q.Data, "Q")
	assertFinite(t, tall.R.Data, "R")
	if be := tall.BackwardError(a); be > 5e-3 {
		t.Errorf("recovered backward error %g, want <= 5e-3", be)
	}
}

// TestTallScalingRetryRung covers the one engine-ladder rung that exists on
// the all-FP32 TSQR path: retry with column scaling re-enabled. Unlike the
// fp16 serial path, the FP32 pipeline (with overflow-safe Nrm2 norms)
// cannot saturate on any input whose true R is float32-representable, so
// the rung is exercised deterministically with an injected one-shot block
// failure, and the genuinely unrepresentable-R case is pinned to a typed
// error under both policies — never silent Inf.
func TestTallScalingRetryRung(t *testing.T) {
	defer faultinject.Disarm()
	rng := rand.New(rand.NewSource(29))
	a := ToFloat32(matgen.Normal(rng, 256, 32))
	cfg := Config{Cutoff: 32, DisableColumnScaling: true, OnHazard: HazardFallback}
	if err := faultinject.Arm("seed=1;tsqr.block.factor=error@once=1"); err != nil {
		t.Fatal(err)
	}
	f, err := FactorizeTall(a, tallBattery, cfg)
	faultinject.Disarm()
	if err != nil {
		t.Fatalf("scaling retry did not recover: %v", err)
	}
	if f.ColumnScales == nil {
		t.Error("retry should have re-enabled column scaling")
	}
	retried := false
	for _, h := range f.Hazards {
		if h.Action == "retry with column scaling" {
			retried = true
		}
	}
	if !retried {
		t.Errorf("scaling retry not recorded: %+v", f.Hazards)
	}
	if be := f.BackwardError(a); be > 5e-3 {
		t.Errorf("recovered backward error %g", be)
	}

	// Unrepresentable R: column norms ~4e38 exceed the float32 max, so no
	// algorithm (and no retry) can express R. Both policies must refuse
	// with a typed hazard rather than emit saturated factors.
	big := matgen.Normal(rng, 256, 32)
	for j := 0; j < 32; j++ {
		col := big.Col(j)
		for i := range col {
			col[i] *= 2.5e37
		}
	}
	ab := ToFloat32(big)
	if _, err := FactorizeTall(ab, tallBattery, Config{Cutoff: 32, DisableColumnScaling: true}); !isTypedHazard(err) {
		t.Errorf("HazardFail unrepresentable R: got %v, want typed hazard", err)
	}
	if _, err := FactorizeTall(ab, tallBattery, cfg); !isTypedHazard(err) {
		t.Errorf("HazardFallback unrepresentable R: got %v, want typed hazard", err)
	}
}

// TestTallInputValidation mirrors the serial entry-point contract.
func TestTallInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, pol := range []HazardPolicy{HazardFail, HazardFallback} {
		cfg := Config{OnHazard: pol}
		if _, err := FactorizeTall(ToFloat32(matgen.WithNaN(rng, 64, 16, 3, 5)), TallOptions{}, cfg); !errors.Is(err, ErrNonFinite) {
			t.Errorf("policy %v: NaN input: %v", pol, err)
		}
		if _, err := FactorizeTall(ToFloat32(matgen.WithInf(rng, 64, 16, 0, 0)), TallOptions{}, cfg); !errors.Is(err, ErrNonFinite) {
			t.Errorf("policy %v: Inf input: %v", pol, err)
		}
	}
	if _, err := FactorizeTall(nil, TallOptions{}, Config{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("nil matrix: %v", err)
	}
	if _, err := FactorizeTall(NewMatrix32(0, 4), TallOptions{}, Config{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("zero rows: %v", err)
	}
	if _, err := FactorizeTall(NewMatrix32(3, 5), TallOptions{}, Config{}); !errors.Is(err, ErrShape) {
		t.Errorf("wide matrix: %v", err)
	}
}

// TestTallFactorizationBacksSolves proves a TSQR factorization is a drop-in
// Factorization for the serving layer: solve-with-factor (the cache-hit and
// stream-commit-then-solve path) reaches the same optimality as a serial
// factor, and the all-FP32 pipeline reports zero EngineStats by design.
func TestTallFactorizationBacksSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a64 := matgen.Normal(rng, 512, 48)
	p := matgen.NewLLSProblem(rng, a64, 0.1)

	f, err := FactorizeTall(ToFloat32(a64), TallOptions{BlockRows: 128}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.EngineStats != (EngineStats{}) {
		t.Errorf("TSQR path reported engine stats %+v; the pipeline is all-FP32", f.EngineStats)
	}
	if f.TSQR == nil || f.TSQR.Blocks != 4 || len(f.TSQR.BlockFactor) != 4 {
		t.Fatalf("TSQR info = %+v, want 4 timed blocks", f.TSQR)
	}
	sol, err := SolveLeastSquaresWithFactor(f, p.A, p.B, SolveOptions{})
	if err != nil {
		t.Fatalf("solve with TSQR factor: %v", err)
	}
	if !sol.Converged {
		t.Errorf("refinement did not converge (optimality %g)", sol.Optimality)
	}
	assertFinite(t, sol.X, "X")

	// Reorthogonalized TSQR pass: the twice-is-enough contract holds.
	f2, err := FactorizeTall(ToFloat32(a64), TallOptions{BlockRows: 128}, Config{ReOrthogonalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Reorthogonalized {
		t.Error("Reorthogonalized flag not set")
	}
	if oe := f2.OrthogonalityError(); oe > 5e-5 {
		t.Errorf("reorthogonalized ‖I−QᵀQ‖ = %g, want working precision", oe)
	}
}
