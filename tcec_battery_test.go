package tcqr

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"tcqr/internal/gram"
	"tcqr/internal/matgen"
	"tcqr/internal/tcsim"
)

// TestEngineLadderConstruction pins the error-aware engine ladder: the
// tc-ec rung appears for precision-class failures on a plain-TC
// configuration and only there — never after an fp16 overflow (tc-ec shares
// the fp16 exponent range and cannot fix one), never when the configuration
// already left the plain TensorCore.
func TestEngineLadderConstruction(t *testing.T) {
	breakdown := fmt.Errorf("panel: %w", ErrBreakdown)
	overflow := fmt.Errorf("engine: %w", ErrOverflow)
	const (
		scaling = "retry with column scaling"
		tcec    = "retry with error-corrected tensorcore engine"
		bf16    = "retry with bfloat16 engine"
		fp32    = "retry with fp32 engine"
	)
	cases := []struct {
		name string
		cfg  Config
		err  error
		want []string
	}{
		{"tc-breakdown", Config{}, breakdown, []string{tcec, bf16, fp32}},
		{"tc-overflow", Config{}, overflow, []string{bf16, fp32}},
		{"tcec-breakdown", Config{UseTCEC: true}, breakdown, []string{bf16, fp32}},
		{"bf16-breakdown", Config{UseBFloat16: true}, breakdown, []string{fp32}},
		{"fp32-breakdown", Config{DisableTensorCore: true}, breakdown, nil},
		{"unscaled-overflow", Config{DisableColumnScaling: true}, overflow, []string{scaling, bf16, fp32}},
		{"unscaled-breakdown", Config{DisableColumnScaling: true}, breakdown, []string{scaling, tcec, bf16, fp32}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rungs := engineLadder(c.cfg, c.err)
			var got []string
			for _, r := range rungs {
				got = append(got, r.action)
			}
			if fmt.Sprint(got) != fmt.Sprint(c.want) {
				t.Fatalf("ladder actions %v, want %v", got, c.want)
			}
			for _, r := range rungs {
				if r.action == tcec && !r.cfg.UseTCEC {
					t.Errorf("tc-ec rung does not set UseTCEC: %+v", r.cfg)
				}
			}
		})
	}
}

// TestTcEcPanelEscalationBattery is the root half of the escalation
// acceptance property: a TensorCoreInPanel factorization under
// HazardFallback trips the panel quality gate at the plain engine's ~2⁻¹¹
// error floor and must recover on the tc-ec rung — precision-loss hazards
// recorded, zero escalations to an fp32 panel, backward error equal (same
// order) to the all-fp32 run — while a GEMM observer proves the hot path
// actually ran on the error-corrected tensor-core simulant.
func TestTcEcPanelEscalationBattery(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := ToFloat32(matgen.WithCond(rng, 512, 64, 100, matgen.Geometric))

	var mu sync.Mutex
	calls := map[string]int64{}
	unobserve := tcsim.RegisterGemmObserver(func(engine string, m, n, k int) {
		mu.Lock()
		calls[engine]++
		mu.Unlock()
	})
	defer unobserve()
	snapshot := func(name string) int64 {
		mu.Lock()
		defer mu.Unlock()
		return calls[name]
	}

	f, err := Factorize(a, Config{TensorCoreInPanel: true, OnHazard: HazardFallback})
	if err != nil {
		t.Fatalf("fallback factorization failed: %v", err)
	}
	loss := 0
	for _, h := range f.Hazards {
		if h.Kind != HazardPrecisionLoss {
			continue
		}
		loss++
		if !strings.Contains(h.Action, "TCEC-GEMM") {
			t.Errorf("precision-loss event escalated to %q, want the tc-ec rung", h.Action)
		}
		if strings.Contains(h.Action, "MGS") || strings.Contains(h.Action, "SGEQRF") {
			t.Errorf("precision-loss event %q reached an fp32 panel", h.Action)
		}
	}
	if loss == 0 {
		t.Fatalf("quality gate never tripped; the battery needs the plain-TC panel at its error floor (hazards: %v)", f.Hazards)
	}
	be := f.BackwardError(a)
	if be > gram.DefaultPanelTol {
		t.Fatalf("recovered backward error %g above the %g gate", be, gram.DefaultPanelTol)
	}
	tcCalls, ecCalls := snapshot("TC-GEMM"), snapshot("TCEC-GEMM")
	if tcCalls == 0 {
		t.Error("no plain-TC GEMMs observed; the first rung never ran")
	}
	if ecCalls == 0 {
		t.Error("no tc-ec GEMMs observed; recovery left the tensor-core simulant")
	}

	// The all-fp32 reference: equal backward error (same order), reached
	// here with zero fp32 panel work. Run after the snapshot so its SGEMMs
	// don't pollute the hot-path assertion.
	fRef, err := Factorize(a, Config{DisableTensorCore: true})
	if err != nil {
		t.Fatalf("fp32 reference failed: %v", err)
	}
	beRef := fRef.BackwardError(a)
	if be > 4*beRef && beRef > 4*be {
		t.Errorf("backward errors not comparable: tc-ec recovery %g vs fp32 %g", be, beRef)
	}
}

// TestTcEcConfigFactorize pins the UseTCEC top-level engine end to end: the
// factorization's engine GEMM work runs entirely on the error-corrected
// simulant (observer proof), and its backward error matches the fp32
// engine's to within a small factor — on a matrix where the plain TC engine
// is measurably worse.
func TestTcEcConfigFactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := ToFloat32(matgen.WithCond(rng, 384, 96, 1000, matgen.Geometric))

	var mu sync.Mutex
	calls := map[string]int64{}
	unobserve := tcsim.RegisterGemmObserver(func(engine string, m, n, k int) {
		mu.Lock()
		calls[engine]++
		mu.Unlock()
	})
	defer unobserve()

	// Cutoff 32 < 96 columns forces recursion, so the top-level engine does
	// the inter-panel projection GEMMs.
	f, err := Factorize(a, Config{UseTCEC: true, Cutoff: 32})
	if err != nil {
		t.Fatalf("tc-ec factorization failed: %v", err)
	}
	mu.Lock()
	ec, tc := calls["TCEC-GEMM"], calls["TC-GEMM"]
	mu.Unlock()
	if ec == 0 {
		t.Error("no TCEC-GEMM calls observed; UseTCEC did not reach the engine")
	}
	if tc != 0 {
		t.Errorf("%d plain TC-GEMM calls under UseTCEC; engine selection leaked", tc)
	}
	if f.EngineStats.GemmCalls != ec {
		t.Errorf("EngineStats.GemmCalls = %d, observer saw %d", f.EngineStats.GemmCalls, ec)
	}

	fTC, err := Factorize(a, Config{Cutoff: 32})
	if err != nil {
		t.Fatalf("plain TC factorization failed: %v", err)
	}
	fFP, err := Factorize(a, Config{DisableTensorCore: true, Cutoff: 32})
	if err != nil {
		t.Fatalf("fp32 factorization failed: %v", err)
	}
	beEC, beTC, beFP := f.BackwardError(a), fTC.BackwardError(a), fFP.BackwardError(a)
	t.Logf("backward error: tc=%.3e  tc-ec=%.3e  fp32=%.3e", beTC, beEC, beFP)
	if !(beEC < beTC) {
		t.Errorf("tc-ec backward error %g not strictly below plain TC %g", beEC, beTC)
	}
	if beEC > 8*beFP {
		t.Errorf("tc-ec backward error %g exceeds 8× fp32 %g", beEC, beFP)
	}
}
