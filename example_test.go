package tcqr_test

import (
	"fmt"
	"math/rand"

	"tcqr"
)

// ExampleFactorize factors a random tall matrix on the simulated neural
// engine and reports whether the two paper accuracy metrics land at their
// expected levels.
func ExampleFactorize() {
	rng := rand.New(rand.NewSource(1))
	a := tcqr.NewMatrix32(512, 128)
	for i := range a.Data {
		a.Data[i] = float32(rng.NormFloat64())
	}
	f, err := tcqr.Factorize(a, tcqr.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("R upper triangular:", f.R.Rows == 128 && f.R.Cols == 128)
	fmt.Println("backward error at half-precision level:", f.BackwardError(a) < 5e-3)
	// Output:
	// R upper triangular: true
	// backward error at half-precision level: true
}

// ExampleSolveLeastSquares solves a consistent system to double precision
// with the CGLS refinement of Algorithm 3.
func ExampleSolveLeastSquares() {
	rng := rand.New(rand.NewSource(2))
	const m, n = 400, 80
	a := tcqr.NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			b[i] += a.At(i, j) * xTrue[j]
		}
	}
	sol, err := tcqr.SolveLeastSquares(a, b, tcqr.SolveOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", sol.Converged)
	fmt.Println("double-precision optimality:", sol.Optimality < 1e-10)
	// Output:
	// converged: true
	// double-precision optimality: true
}

// ExampleLowRank truncates a tall matrix with a known fast-decaying
// spectrum.
func ExampleLowRank() {
	rng := rand.New(rand.NewSource(3))
	a := tcqr.NewMatrix32(1024, 32)
	// Rank-2 structure plus small noise.
	for i := 0; i < 1024; i++ {
		for j := 0; j < 32; j++ {
			v := float64((i%7))*float64(j%5) + 0.5*float64(i%3)
			a.Set(i, j, float32(v+0.001*rng.NormFloat64()))
		}
	}
	lr, err := tcqr.LowRank(a, 4, tcqr.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("rank:", lr.Rank)
	fmt.Println("captures the structure:", lr.Error(a) < 1e-2)
	// Output:
	// rank: 4
	// captures the structure: true
}
