package tcqr

import (
	"math"
	"math/rand"
	"testing"

	"tcqr/internal/matgen"
)

func TestRandomizedLowRankTall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Fast-decaying spectrum: rank-8 captures almost everything.
	sigma := make([]float64, 64)
	for i := range sigma {
		sigma[i] = math.Pow(0.5, float64(i))
	}
	a := ToFloat32(matgen.WithSpectrum(rng, 512, 64, sigma))

	lr, err := RandomizedLowRank(a, 8, 8, 1, rng, Config{Cutoff: 16})
	if err != nil {
		t.Fatal(err)
	}
	if lr.Rank != 8 || lr.U.Cols != 8 || lr.V.Cols != 8 {
		t.Fatalf("rank bookkeeping: %d %d %d", lr.Rank, lr.U.Cols, lr.V.Cols)
	}
	// Optimal rank-8 error is σ₉-dominated ≈ 2^-8/‖σ‖ ≈ 0.0034.
	var tail, tot float64
	for i, s := range sigma {
		tot += s * s
		if i >= 8 {
			tail += s * s
		}
	}
	opt := math.Sqrt(tail / tot)
	if e := lr.Error(a); e > 3*opt+5e-3 {
		t.Errorf("randomized rank-8 error %g vs optimal %g", e, opt)
	}
	// Leading singular values approximated.
	for i := 0; i < 4; i++ {
		if math.Abs(float64(lr.S[i])-sigma[i]) > 0.05*sigma[i]+1e-3 {
			t.Errorf("σ_%d estimate %v, want %v", i, lr.S[i], sigma[i])
		}
	}
}

func TestRandomizedLowRankWide(t *testing.T) {
	// The direct LowRank cannot handle m < n; the randomized path can.
	rng := rand.New(rand.NewSource(2))
	sigma := make([]float64, 48)
	for i := range sigma {
		sigma[i] = math.Pow(0.6, float64(i))
	}
	tall := matgen.WithSpectrum(rng, 256, 48, sigma)
	wide := ToFloat32(tall.Transpose()) // 48×256

	lr, err := RandomizedLowRank(wide, 6, 10, 2, rng, Config{Cutoff: 16})
	if err != nil {
		t.Fatal(err)
	}
	if lr.U.Rows != 48 || lr.V.Rows != 256 {
		t.Fatalf("shapes U %dx%d V %dx%d", lr.U.Rows, lr.U.Cols, lr.V.Rows, lr.V.Cols)
	}
	var tail, tot float64
	for i, s := range sigma {
		tot += s * s
		if i >= 6 {
			tail += s * s
		}
	}
	opt := math.Sqrt(tail / tot)
	if e := lr.Error(wide); e > 3*opt+5e-3 {
		t.Errorf("wide randomized error %g vs optimal %g", e, opt)
	}
}

func TestRandomizedLowRankValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix32(20, 20)
	if _, err := RandomizedLowRank(a, 0, 4, 0, rng, Config{}); err == nil {
		t.Error("rank 0 must be rejected")
	}
	if _, err := RandomizedLowRank(a, 18, 8, 0, rng, Config{}); err == nil {
		t.Error("rank+oversample beyond min dim must be rejected")
	}
}

func TestConditionNumber(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := ToFloat32(matgen.WithCond(rng, 512, 64, 1e3, matgen.Geometric))
	kappa, err := ConditionNumber(a, Config{Cutoff: 16})
	if err != nil {
		t.Fatal(err)
	}
	if kappa < 0.8e3 || kappa > 1.3e3 {
		t.Errorf("κ estimate %g, want ≈1e3", kappa)
	}
	// Rank-deficient input reports an error.
	z := NewMatrix32(10, 3)
	for i := 0; i < 10; i++ {
		z.Set(i, 0, 1)
	}
	if _, err := ConditionNumber(z, Config{}); err == nil {
		t.Error("rank-deficient matrix should error")
	}
}
