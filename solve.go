package tcqr

import (
	"tcqr/internal/accuracy"
	"tcqr/internal/lls"
	"tcqr/internal/rgs"
)

// RefineMethod selects how a least squares solution is refined to high
// accuracy after the half-precision factorization.
type RefineMethod int

const (
	// RefineCGLS is Algorithm 3 of the paper: conjugate gradients on the
	// preconditioned normal equations with R as right preconditioner.
	// This is the default and reaches double-precision optimality.
	RefineCGLS RefineMethod = iota
	// RefineLSQR uses preconditioned LSQR instead (mathematically
	// equivalent, more robust on extreme spectra).
	RefineLSQR
	// RefineClassical uses classical residual-correction iterative
	// refinement (stalls at the float32 correction floor).
	RefineClassical
	// RefineNone returns the float32 direct solution x = R⁻¹Qᵀb.
	RefineNone
)

// LeastSquaresResult is the outcome of SolveLeastSquares.
type LeastSquaresResult struct {
	// X minimizes ‖Ax − b‖₂.
	X []float64
	// Iterations is the number of refinement iterations performed.
	Iterations int
	// Converged reports whether the refinement met its tolerance.
	Converged bool
	// Optimality is ‖Aᵀ(Ax − b)‖₂, the paper's Figure 9 accuracy metric,
	// evaluated in float64.
	Optimality float64
	// Factorization is the RGSQRF factor used (reusable via
	// SolveLeastSquaresWithFactor for further right-hand sides).
	Factorization *Factorization
}

// SolveOptions configures SolveLeastSquares.
type SolveOptions struct {
	// QR configures the factorization stage.
	QR Config
	// Method selects the refinement engine (default RefineCGLS).
	Method RefineMethod
	// Tol is the relative convergence tolerance on the preconditioned
	// gradient (0 = 1e-14, effectively double precision).
	Tol float64
	// MaxIterations caps refinement (0 = 200, the paper's stress limit).
	MaxIterations int
}

func (o SolveOptions) method() lls.Method {
	switch o.Method {
	case RefineLSQR:
		return lls.MethodLSQR
	case RefineClassical:
		return lls.MethodRefine
	case RefineNone:
		return lls.MethodDirect
	default:
		return lls.MethodCGLS
	}
}

// SolveLeastSquares solves min ‖Ax − b‖₂ for a tall full-column-rank A
// using the paper's pipeline: narrow A to float32, factor it with the
// neural-engine RGSQRF, then refine to double precision.
func SolveLeastSquares(a *Matrix, b []float64, opts SolveOptions) (*LeastSquaresResult, error) {
	qrOpts, st := opts.QR.options()
	sol, err := lls.Solve(a, b, lls.SolveOptions{
		QR:      qrOpts,
		Method:  opts.method(),
		Tol:     opts.Tol,
		MaxIter: opts.MaxIterations,
	})
	if err != nil {
		return nil, err
	}
	return wrapSolution(sol, a, b, st)
}

// SolveLeastSquaresWithFactor reuses an existing factorization of A for a
// new right-hand side (one QR amortized over many solves).
func SolveLeastSquaresWithFactor(f *Factorization, a *Matrix, b []float64, opts SolveOptions) (*LeastSquaresResult, error) {
	inner := &rgs.Result{Q: f.Q, R: f.R, ColumnScales: f.ColumnScales, Reorthogonalized: f.Reorthogonalized}
	sol, err := lls.SolveWithFactor(inner, a, b, lls.SolveOptions{
		Method:  opts.method(),
		Tol:     opts.Tol,
		MaxIter: opts.MaxIterations,
	})
	if err != nil {
		return nil, err
	}
	return wrapSolution(sol, a, b, nil)
}

func wrapSolution(sol *lls.Solution, a *Matrix, b []float64, st statser) (*LeastSquaresResult, error) {
	res := &LeastSquaresResult{
		X:          sol.X,
		Iterations: sol.Iterations,
		Converged:  sol.Converged,
		Optimality: accuracy.LLSOptimality(a, sol.X, b),
		Factorization: &Factorization{
			Q:                sol.Factor.Q,
			R:                sol.Factor.R,
			ColumnScales:     sol.Factor.ColumnScales,
			Reorthogonalized: sol.Factor.Reorthogonalized,
		},
	}
	if st != nil {
		s := st.Stats()
		res.Factorization.EngineStats = EngineStats{GemmCalls: s.Calls, Flops: s.Flops, Overflows: s.Overflows, Underflows: s.Underflow}
	}
	return res, nil
}

// MultiResult is the outcome of SolveLeastSquaresMulti: column j of X
// minimizes ‖A·X[:,j] − B[:,j]‖.
type MultiResult struct {
	X          *Matrix
	Iterations []int
	Converged  []bool
	// Factorization is the shared RGSQRF factor (one QR amortized over
	// all right-hand sides — the economics behind Figure 8's pipeline).
	Factorization *Factorization
}

// SolveLeastSquaresMulti solves min ‖A·X − B‖ column-wise: one
// neural-engine factorization shared by every right-hand side, with the
// CGLS refinements running concurrently.
func SolveLeastSquaresMulti(a *Matrix, b *Matrix, opts SolveOptions) (*MultiResult, error) {
	qrOpts, _ := opts.QR.options()
	sol, err := lls.SolveMulti(a, b, lls.SolveOptions{
		QR:      qrOpts,
		Tol:     opts.Tol,
		MaxIter: opts.MaxIterations,
	})
	if err != nil {
		return nil, err
	}
	return &MultiResult{
		X:          sol.X,
		Iterations: sol.Iterations,
		Converged:  sol.Converged,
		Factorization: &Factorization{
			Q:                sol.Factor.Q,
			R:                sol.Factor.R,
			ColumnScales:     sol.Factor.ColumnScales,
			Reorthogonalized: sol.Factor.Reorthogonalized,
		},
	}, nil
}
