package tcqr

import (
	"fmt"

	"tcqr/internal/accuracy"
	"tcqr/internal/hazard"
	"tcqr/internal/lls"
)

// RefineMethod selects how a least squares solution is refined to high
// accuracy after the half-precision factorization.
type RefineMethod int

const (
	// RefineCGLS is Algorithm 3 of the paper: conjugate gradients on the
	// preconditioned normal equations with R as right preconditioner.
	// This is the default and reaches double-precision optimality.
	RefineCGLS RefineMethod = iota
	// RefineLSQR uses preconditioned LSQR instead (mathematically
	// equivalent, more robust on extreme spectra).
	RefineLSQR
	// RefineClassical uses classical residual-correction iterative
	// refinement (stalls at the float32 correction floor).
	RefineClassical
	// RefineNone returns the float32 direct solution x = R⁻¹Qᵀb.
	RefineNone
)

// LeastSquaresResult is the outcome of SolveLeastSquares.
type LeastSquaresResult struct {
	// X minimizes ‖Ax − b‖₂.
	X []float64
	// Iterations is the number of refinement iterations performed.
	Iterations int
	// Converged reports whether the refinement met its tolerance.
	Converged bool
	// Optimality is ‖Aᵀ(Ax − b)‖₂, the paper's Figure 9 accuracy metric,
	// evaluated in float64.
	Optimality float64
	// Factorization is the RGSQRF factor used (reusable via
	// SolveLeastSquaresWithFactor for further right-hand sides).
	Factorization *Factorization
	// Hazards lists every numerical hazard detected across the pipeline —
	// factorization hazards first, then refinement hazards (CGLS stagnation
	// or divergence, LSQR fallbacks). Empty for a clean run.
	Hazards []Hazard
}

// SolveOptions configures SolveLeastSquares.
type SolveOptions struct {
	// QR configures the factorization stage.
	QR Config
	// Method selects the refinement engine (default RefineCGLS).
	Method RefineMethod
	// Tol is the relative convergence tolerance on the preconditioned
	// gradient (0 = 1e-14, effectively double precision).
	Tol float64
	// MaxIterations caps refinement (0 = 200, the paper's stress limit).
	MaxIterations int
	// OnHazard selects the response to numerical hazards across the whole
	// pipeline. HazardFallback enables the recovery ladder in the
	// factorization stage (as if QR.OnHazard were set) and re-solves with
	// preconditioned LSQR when CGLS stagnates or diverges. The zero value
	// (HazardFail) detects and reports but returns typed errors when the
	// result would be corrupt.
	OnHazard HazardPolicy
}

func (o SolveOptions) method() lls.Method {
	switch o.Method {
	case RefineLSQR:
		return lls.MethodLSQR
	case RefineClassical:
		return lls.MethodRefine
	case RefineNone:
		return lls.MethodDirect
	default:
		return lls.MethodCGLS
	}
}

// qrConfig is the factorization config with the solve-level hazard policy
// folded in: asking for fallback at the solve level enables it in the QR
// stage too.
func (o SolveOptions) qrConfig() Config {
	cfg := o.QR
	if o.OnHazard == HazardFallback {
		cfg.OnHazard = HazardFallback
	}
	return cfg
}

// SolveLeastSquares solves min ‖Ax − b‖₂ for a tall full-column-rank A
// using the paper's pipeline: narrow A to float32, factor it with the
// neural-engine RGSQRF, then refine to double precision. Malformed inputs
// (NaN/Inf, empty, mismatched shapes) return typed errors; numerical
// hazards follow opts.OnHazard.
func SolveLeastSquares(a *Matrix, b []float64, opts SolveOptions) (*LeastSquaresResult, error) {
	if err := hazard.CheckMatrix("A", a); err != nil {
		return nil, fmt.Errorf("tcqr: %w", err)
	}
	f, err := Factorize(ToFloat32(a), opts.qrConfig())
	if err != nil {
		return nil, err
	}
	return SolveLeastSquaresWithFactor(f, a, b, opts)
}

// SolveLeastSquaresWithFactor reuses an existing factorization of A for a
// new right-hand side (one QR amortized over many solves).
func SolveLeastSquaresWithFactor(f *Factorization, a *Matrix, b []float64, opts SolveOptions) (*LeastSquaresResult, error) {
	rep := &hazard.Report{}
	sol, err := lls.SolveWithFactor(f.inner(), a, b, lls.SolveOptions{
		Method:       opts.method(),
		Tol:          opts.Tol,
		MaxIter:      opts.MaxIterations,
		FallbackLSQR: opts.OnHazard == HazardFallback,
		Hazards:      rep,
	})
	if err != nil {
		return nil, fmt.Errorf("tcqr: %w", err)
	}
	return &LeastSquaresResult{
		X:             sol.X,
		Iterations:    sol.Iterations,
		Converged:     sol.Converged,
		Optimality:    accuracy.LLSOptimality(a, sol.X, b),
		Factorization: f,
		Hazards:       append(append([]Hazard(nil), f.Hazards...), rep.Events()...),
	}, nil
}

// MultiResult is the outcome of SolveLeastSquaresMulti: column j of X
// minimizes ‖A·X[:,j] − B[:,j]‖.
type MultiResult struct {
	X          *Matrix
	Iterations []int
	Converged  []bool
	// Factorization is the shared RGSQRF factor (one QR amortized over
	// all right-hand sides — the economics behind Figure 8's pipeline).
	Factorization *Factorization
	// Hazards lists factorization hazards followed by per-column refinement
	// hazards.
	Hazards []Hazard
}

// SolveLeastSquaresMulti solves min ‖A·X − B‖ column-wise: one
// neural-engine factorization shared by every right-hand side, with the
// CGLS refinements running concurrently.
func SolveLeastSquaresMulti(a *Matrix, b *Matrix, opts SolveOptions) (*MultiResult, error) {
	if err := hazard.CheckMatrix("A", a); err != nil {
		return nil, fmt.Errorf("tcqr: %w", err)
	}
	f, err := Factorize(ToFloat32(a), opts.qrConfig())
	if err != nil {
		return nil, err
	}
	return SolveLeastSquaresMultiWithFactor(f, a, b, opts)
}

// SolveLeastSquaresMultiWithFactor reuses an existing factorization of A for
// a block of right-hand sides: the batched analogue of
// SolveLeastSquaresWithFactor, and the call a request coalescer should make
// for solves that share a cached factorization (one GEMM-shaped refinement
// pass instead of N independent solves). The refinement method is CGLS with
// the LSQR fallback under opts.OnHazard == HazardFallback; hazards recorded
// during the factorization propagate into the result ahead of the
// refinement's own events.
func SolveLeastSquaresMultiWithFactor(f *Factorization, a *Matrix, b *Matrix, opts SolveOptions) (*MultiResult, error) {
	rep := &hazard.Report{}
	sol, err := lls.SolveMultiWithFactor(f.inner(), a, b, lls.SolveOptions{
		Tol:          opts.Tol,
		MaxIter:      opts.MaxIterations,
		FallbackLSQR: opts.OnHazard == HazardFallback,
		Hazards:      rep,
	})
	if err != nil {
		return nil, fmt.Errorf("tcqr: %w", err)
	}
	return &MultiResult{
		X:             sol.X,
		Iterations:    sol.Iterations,
		Converged:     sol.Converged,
		Factorization: f,
		Hazards:       append(append([]Hazard(nil), f.Hazards...), rep.Events()...),
	}, nil
}
