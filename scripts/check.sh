#!/bin/sh
# Tier-2 repository check: static analysis plus the full test suite under the
# race detector. Run from the repository root. Mirrors `make check-race`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "OK"
