#!/bin/sh
# Tier-2 repository check: static analysis, the full test suite under the
# race detector, and a short native-fuzz smoke of every fuzz target. Run
# from the repository root. Mirrors `make check-deep`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

# staticcheck is optional tooling: run it when the developer has it
# installed, skip (loudly) when not, so the check never depends on a
# network fetch.
if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck =="
	staticcheck ./...
else
	echo "== staticcheck (skipped: not installed) =="
fi

echo "== go test -race =="
go test -race ./...

# internal/serve and internal/tcsim hold two fuzz targets each, so those
# runs name their target; the single-target packages keep the unambiguous
# -fuzz=. form.
for pkg in ./internal/f16 ./internal/bf16 ./internal/blas ./internal/wirefmt; do
	echo "== fuzz smoke $pkg =="
	go test -run '^$' -fuzz . -fuzztime 10s "$pkg"
done
for target in FuzzTcEcSplitRoundTrip FuzzGemmTcEcVsFP32; do
	echo "== fuzz smoke ./internal/tcsim ($target) =="
	go test -run '^$' -fuzz "^$target\$" -fuzztime 10s ./internal/tcsim
done
echo "== fuzz smoke ./internal/tsqr =="
go test -run '^$' -fuzz '^FuzzTSQRBlockVsSerial$' -fuzztime 10s ./internal/tsqr
for target in FuzzRetryPolicy FuzzStreamFrameDecode; do
	echo "== fuzz smoke ./internal/serve ($target) =="
	go test -run '^$' -fuzz "^$target\$" -fuzztime 10s ./internal/serve
done

# The tc-ec accuracy/ladder battery runs inside `go test -race ./...` above
# already; this named pass makes its verdict visible on its own line: the
# engine accuracy ordering, the escalation property (strictly fewer fp32
# escalations at equal backward error), and the engine-GEMM hot-path
# assertions. See DESIGN.md §16 and `make bench-tcec`.
echo "== tc-ec battery =="
go test -race -run 'TcEc|Ladder|CholQREngine' . ./internal/tcsim ./internal/gram

# The cluster chaos soak runs inside `go test -race ./...` above already;
# this named pass makes its verdict visible on its own line (and keeps the
# step when someone narrows the suite run above). Seeded fault schedule,
# deterministic: see DESIGN.md §14 and `make cluster-soak`.
echo "== cluster soak =="
go test -race -run 'TestClusterChaosSoak' ./internal/serve

# Spill-tier crash consistency: torn writes and load faults injected during
# a mixed factorize/update/solve storm, then a restart that must quarantine
# exactly the torn files and rewarm every intact one. See DESIGN.md §15 and
# `make chaos`.
echo "== spill chaos soak =="
go test -race -run 'TestSpillChaosSoak' ./internal/serve

echo "== serve smoke =="
sh scripts/serve_smoke.sh

echo "OK"
