#!/bin/sh
# Tier-2 repository check: static analysis, the full test suite under the
# race detector, and a short native-fuzz smoke of every fuzz target. Run
# from the repository root. Mirrors `make check-deep`.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

# staticcheck is optional tooling: run it when the developer has it
# installed, skip (loudly) when not, so the check never depends on a
# network fetch.
if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck =="
	staticcheck ./...
else
	echo "== staticcheck (skipped: not installed) =="
fi

echo "== go test -race =="
go test -race ./...

# Each fuzz package holds exactly one target, so -fuzz=. is unambiguous.
for pkg in ./internal/f16 ./internal/bf16 ./internal/blas ./internal/wirefmt ./internal/serve; do
	echo "== fuzz smoke $pkg =="
	go test -run '^$' -fuzz . -fuzztime 10s "$pkg"
done

echo "== serve smoke =="
sh scripts/serve_smoke.sh

echo "OK"
