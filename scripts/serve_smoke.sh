#!/bin/sh
# End-to-end smoke test of the tcqrd daemon: build it, start it on an
# ephemeral port, drive it with its own -smoke client (factorize, cache hit,
# coalesced solves, hazard fallback/fail, malformed input, /statz), and shut
# it down. Exits non-zero if the daemon fails to start, any API response
# deviates from the contract, or the daemon does not drain cleanly on
# SIGTERM. Run from the repository root; `make serve-smoke` wraps this.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -9 "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build tcqrd =="
go build -o "$workdir/tcqrd" ./cmd/tcqrd

# A long coalescing window makes the smoke client's concurrent solves batch
# deterministically (they all arrive well within 250ms of each other).
echo "== start daemon =="
"$workdir/tcqrd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
	-window 250ms -deadline 30s >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

i=0
while [ ! -s "$workdir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ] || ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "daemon failed to start:" >&2
		cat "$workdir/daemon.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$workdir/addr")
echo "daemon listening on $addr"

echo "== run smoke client =="
"$workdir/tcqrd" -smoke "http://$addr"

echo "== graceful drain =="
kill -TERM "$daemon_pid"
# Watchdog: the daemon's own drain budget is 10s; if it hangs past 15s the
# watchdog kills it and wait reports the non-zero status below.
(sleep 15 && kill -9 "$daemon_pid" 2>/dev/null) &
watchdog=$!
if wait "$daemon_pid"; then
	drain_status=0
else
	drain_status=$?
fi
kill "$watchdog" 2>/dev/null || true
daemon_pid=""
if [ "$drain_status" -ne 0 ]; then
	echo "daemon exited uncleanly (status $drain_status):" >&2
	cat "$workdir/daemon.log" >&2
	exit 1
fi

echo "SERVE SMOKE OK"
