#!/bin/sh
# End-to-end smoke test of the tcqrd daemon: build it, start it on an
# ephemeral port, drive it with its own -smoke client (factorize, cache hit,
# coalesced solves, hazard fallback/fail, malformed input, /statz, /metrics),
# scrape /metrics independently with curl, and shut it down. A second pass
# restarts the daemon with -fault-spec armed and drives the failure contract
# (injected 500, degraded 503 with Retry-After, cache-only serving, fault
# metrics). Exits non-zero if the daemon fails to start, any API response
# deviates from the contract, the metrics scrape is missing traffic, or the
# daemon does not drain cleanly on SIGTERM. Run from the repository root;
# `make serve-smoke` wraps this.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill -9 "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build tcqrd =="
go build -o "$workdir/tcqrd" ./cmd/tcqrd

# A long coalescing window makes the smoke client's concurrent solves batch
# deterministically (they all arrive well within 250ms of each other).
echo "== start daemon =="
"$workdir/tcqrd" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
	-window 250ms -deadline 30s >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

i=0
while [ ! -s "$workdir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ] || ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "daemon failed to start:" >&2
		cat "$workdir/daemon.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr=$(cat "$workdir/addr")
echo "daemon listening on $addr"

echo "== run smoke client =="
"$workdir/tcqrd" -smoke "http://$addr"

# Independent scrape: after the smoke traffic, /metrics must serve the
# Prometheus text format with non-zero request and cache-hit counters. The
# fetcher degrades curl -> wget so the check runs wherever one exists.
echo "== scrape /metrics =="
if command -v curl >/dev/null 2>&1; then
	curl -fsS "http://$addr/metrics" >"$workdir/metrics.txt"
elif command -v wget >/dev/null 2>&1; then
	wget -qO "$workdir/metrics.txt" "http://$addr/metrics"
else
	echo "neither curl nor wget available" >&2
	exit 1
fi
# metric_above family [file]: succeeds when any sample of the family is > 0.
metric_above() {
	awk -v name="$1" '
		$1 == name || index($1, name "{") == 1 { if ($2 + 0 > 0) found = 1 }
		END { exit !found }
	' "${2:-$workdir/metrics.txt}"
}
for family in tcqrd_requests_total tcqrd_cache_hits_total; do
	if metric_above "$family"; then
		echo "ok   $family > 0"
	else
		echo "FAIL $family has no non-zero sample:" >&2
		grep "^$family" "$workdir/metrics.txt" >&2 || echo "(family absent)" >&2
		exit 1
	fi
done
for family in tcqrd_stage_duration_seconds_count tcqrd_hazards_total tcqrd_engine_gemm_calls_total; do
	if grep -q "^$family" "$workdir/metrics.txt"; then
		echo "ok   $family present"
	else
		echo "FAIL $family missing from /metrics" >&2
		exit 1
	fi
done
# metric_label_above family label [file]: succeeds when any sample of the
# family carrying the label substring is > 0. The smoke client drove binary
# frames through /v1/solve, so the wire counters must have binary samples.
metric_label_above() {
	awk -v name="$1" -v lab="$2" '
		index($1, name "{") == 1 && index($1, lab) > 0 { if ($2 + 0 > 0) found = 1 }
		END { exit !found }
	' "${3:-$workdir/metrics.txt}"
}
for enc in json binary; do
	if metric_label_above tcqrd_wire_requests_total "encoding=\"$enc\""; then
		echo "ok   tcqrd_wire_requests_total{encoding=\"$enc\"} > 0"
	else
		echo "FAIL tcqrd_wire_requests_total has no non-zero encoding=\"$enc\" sample:" >&2
		grep "^tcqrd_wire_requests_total" "$workdir/metrics.txt" >&2 || echo "(family absent)" >&2
		exit 1
	fi
done
if metric_label_above tcqrd_wire_responses_total 'encoding="binary"'; then
	echo "ok   tcqrd_wire_responses_total{encoding=\"binary\"} > 0"
else
	echo "FAIL tcqrd_wire_responses_total has no non-zero binary sample:" >&2
	grep "^tcqrd_wire_responses_total" "$workdir/metrics.txt" >&2 || echo "(family absent)" >&2
	exit 1
fi
# The smoke client streamed a 2048x16 matrix in three binary chunks and
# committed it, which routes through the parallel TSQR pipeline (2048 rows
# clears the default -tsqr-min-rows threshold). Both the chunked-upload
# session counters and the TSQR stage instrumentation must show that traffic.
for family in tcqrd_stream_begun_total tcqrd_stream_committed_total \
	tcqrd_stream_appends_total tcqrd_tsqr_factorize_total; do
	if metric_above "$family"; then
		echo "ok   $family > 0"
	else
		echo "FAIL $family has no non-zero sample:" >&2
		grep "^$family" "$workdir/metrics.txt" >&2 || echo "(family absent)" >&2
		exit 1
	fi
done
for stage in block_factor tree_reduce q_recover; do
	if metric_label_above tcqrd_tsqr_stage_seconds_count "stage=\"$stage\""; then
		echo "ok   tcqrd_tsqr_stage_seconds_count{stage=\"$stage\"} > 0"
	else
		echo "FAIL tcqrd_tsqr_stage_seconds has no non-zero stage=\"$stage\" sample:" >&2
		grep "^tcqrd_tsqr_stage_seconds_count" "$workdir/metrics.txt" >&2 || echo "(family absent)" >&2
		exit 1
	fi
done
# All smoke sessions were committed or proven consumed; none may linger.
if awk '$1 == "tcqrd_stream_sessions" && $2 + 0 == 0 { zero = 1 } END { exit !zero }' \
	"$workdir/metrics.txt"; then
	echo "ok   tcqrd_stream_sessions == 0"
else
	echo "FAIL tcqrd_stream_sessions nonzero or absent:" >&2
	grep "^tcqrd_stream_sessions" "$workdir/metrics.txt" >&2 || echo "(family absent)" >&2
	exit 1
fi

echo "== graceful drain =="
kill -TERM "$daemon_pid"
# Watchdog: the daemon's own drain budget is 10s; if it hangs past 15s the
# watchdog kills it and wait reports the non-zero status below.
(sleep 15 && kill -9 "$daemon_pid" 2>/dev/null) &
watchdog=$!
if wait "$daemon_pid"; then
	drain_status=0
else
	drain_status=$?
fi
kill "$watchdog" 2>/dev/null || true
daemon_pid=""
if [ "$drain_status" -ne 0 ]; then
	echo "daemon exited uncleanly (status $drain_status):" >&2
	cat "$workdir/daemon.log" >&2
	exit 1
fi

# --- fault-armed pass -------------------------------------------------------
# A second daemon with the failpoint registry armed (the schedule must match
# faultSmokeSpec in cmd/tcqrd/faultsmoke.go): every second cold factorization
# fails, retry is disabled, and a single internal failure trips degraded
# cache-only mode for 5 minutes. The -smoke-fault client walks it through
# the injected 500, the degraded 503 with Retry-After, and cache-hit serving
# while degraded; the independent scrape then confirms the daemon actually
# injected faults.
echo "== start fault-armed daemon =="
"$workdir/tcqrd" -addr 127.0.0.1:0 -addr-file "$workdir/addr2" \
	-fault-spec "seed=7;serve.cache.factorize=error@every=2" \
	-retry-attempts 1 -degrade-threshold 1 -degrade-cooldown 5m \
	-window 0 -deadline 30s >"$workdir/daemon2.log" 2>&1 &
daemon_pid=$!

i=0
while [ ! -s "$workdir/addr2" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ] || ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "fault-armed daemon failed to start:" >&2
		cat "$workdir/daemon2.log" >&2
		exit 1
	fi
	sleep 0.1
done
addr2=$(cat "$workdir/addr2")
echo "fault-armed daemon listening on $addr2"

echo "== run fault smoke client =="
"$workdir/tcqrd" -smoke-fault "http://$addr2"

echo "== scrape fault metrics =="
if command -v curl >/dev/null 2>&1; then
	curl -fsS "http://$addr2/metrics" >"$workdir/metrics2.txt"
else
	wget -qO "$workdir/metrics2.txt" "http://$addr2/metrics"
fi
for family in tcqrd_fault_injected_total tcqrd_degraded_entered_total; do
	if metric_above "$family" "$workdir/metrics2.txt"; then
		echo "ok   $family > 0"
	else
		echo "FAIL $family has no non-zero sample:" >&2
		grep "^$family" "$workdir/metrics2.txt" >&2 || echo "(family absent)" >&2
		exit 1
	fi
done

echo "== fault-armed drain =="
kill -TERM "$daemon_pid"
(sleep 15 && kill -9 "$daemon_pid" 2>/dev/null) &
watchdog=$!
if wait "$daemon_pid"; then
	drain_status=0
else
	drain_status=$?
fi
kill "$watchdog" 2>/dev/null || true
daemon_pid=""
if [ "$drain_status" -ne 0 ]; then
	echo "fault-armed daemon exited uncleanly (status $drain_status):" >&2
	cat "$workdir/daemon2.log" >&2
	exit 1
fi

echo "SERVE SMOKE OK"
