// Tall-skinny QR: the extreme-aspect-ratio case of the related work
// (Ootomo & Yokota, "TSQR on Tensor Cores", SC'19 — limited to very tall
// matrices with 16 columns; the paper positions RGSQRF as handling
// arbitrary shapes while containing a TSQR as its panel).
//
// This example runs that panel — the communication-avoiding Gram-Schmidt
// tree of Eq. 8 — standalone on a 262144×16 matrix: the rows are split
// into 256-row tiles factored concurrently (the simulated threadblocks),
// the stacked R factors are reduced in a log tree, and the tile Q factors
// are fixed up with a batched GEMM. Wall time is compared against blocked
// Householder on the same matrix, and against the full RGSQRF on a
// moderate-aspect matrix to show the same code covers both regimes.
//
// Run with: go run ./examples/tallskinny
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tcqr"
	"tcqr/internal/accuracy"
	"tcqr/internal/gram"
)

func main() {
	const m, n = 262144, 16
	rng := rand.New(rand.NewSource(5))
	a := tcqr.NewMatrix32(m, n)
	for i := range a.Data {
		a.Data[i] = float32(rng.NormFloat64())
	}
	fmt.Printf("tall-skinny QR of a %dx%d matrix (aspect ratio %d:1)\n\n", m, n, m/n)

	// The CAQR/TSQR panel, standalone.
	caqr := &gram.CAQRPanel{}
	start := time.Now()
	q, r, err := caqr.Factor(a)
	if err != nil {
		log.Fatal(err)
	}
	tCAQR := time.Since(start)
	fmt.Printf("CAQR (TSQR) panel      : %8.1f ms   backward error %.2e   ‖I-QᵀQ‖ %.2e\n",
		float64(tCAQR.Microseconds())/1e3, accuracy.BackwardError(a, q, r), accuracy.OrthoError(q))

	// Blocked Householder on the same matrix.
	hh := &gram.HouseholderPanel{}
	start = time.Now()
	qh, rh, err := hh.Factor(a)
	if err != nil {
		log.Fatal(err)
	}
	tHH := time.Since(start)
	fmt.Printf("blocked Householder    : %8.1f ms   backward error %.2e   ‖I-QᵀQ‖ %.2e\n",
		float64(tHH.Microseconds())/1e3, accuracy.BackwardError(a, qh, rh), accuracy.OrthoError(qh))
	fmt.Printf("software speedup       : %8.1fx  (the paper's V100 panel: 3.3x over cuSOLVER)\n\n",
		float64(tHH)/float64(tCAQR))

	// The same code path inside the general factorization: a moderate
	// aspect ratio through the public API, where the panel handles the
	// leaves and the neural-engine GEMMs handle the rest.
	const gm, gn = 16384, 512
	g := tcqr.NewMatrix32(gm, gn)
	for i := range g.Data {
		g.Data[i] = float32(rng.NormFloat64())
	}
	start = time.Now()
	f, err := tcqr.Factorize(g, tcqr.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full RGSQRF %dx%d   : %8.1f ms   backward error %.2e\n",
		gm, gn, float64(time.Since(start).Microseconds())/1e3, f.BackwardError(g))
	fmt.Println("\n(software timings of the simulator; simulated-V100 numbers come from cmd/tcqr-tables)")
}
