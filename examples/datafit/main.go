// Data fitting: recover the coefficients of a physical signal model from
// noisy samples — the class of least squares problems (satellite
// gradiometry, data fitting, statistics) that motivates Section 2.2 of the
// paper.
//
// The design matrix mixes polynomial trend columns t^k with harmonic
// columns sin/cos(2πft). The polynomial columns have wildly different
// magnitudes, which makes this a natural demonstration of the paper's
// Section 3.5 column scaling: without it, the half-precision engine
// overflows and the fit is destroyed; with it (the default), the fit
// reaches double precision.
//
// Run with: go run ./examples/datafit
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tcqr"
)

const (
	samples    = 4096
	polyDeg    = 4  // 1, t, t², t³, t⁴
	harmonics  = 30 // sin/cos pairs at f = 1..30
	columns    = polyDeg + 1 + 2*harmonics
	noiseLevel = 1e-3
	// cutoff keeps the recursion active for this narrow design matrix so
	// the model columns actually flow through the neural-engine GEMMs.
	cutoff = 16
)

func main() {
	rng := rand.New(rand.NewSource(2))

	// Ground-truth coefficients. The polynomial coefficients are scaled so
	// every term contributes O(1) to the signal (a physical model would,
	// too — the raw t^k columns are huge, their coefficients tiny).
	coef := make([]float64, columns)
	for i := range coef {
		coef[i] = rng.NormFloat64()
	}
	for k := 0; k <= polyDeg; k++ {
		coef[2*harmonics+k] /= math.Pow(40, float64(k))
	}

	// Samples over t ∈ [0, 40]: the t⁴ column reaches 2.56e6 while the
	// harmonic columns stay in [-1, 1] — over 6 decades of column spread.
	// The polynomial columns come last so they sit in the trailing block
	// of the first recursion split, i.e. they pass through the neural
	// engine's GEMMs raw — which is where unscaled fp16 overflows.
	a := tcqr.NewMatrix(samples, columns)
	b := make([]float64, samples)
	for i := 0; i < samples; i++ {
		t := 40 * float64(i) / samples
		col := 0
		for h := 1; h <= harmonics; h++ {
			a.Set(i, col, math.Sin(2*math.Pi*float64(h)*t/40))
			col++
			a.Set(i, col, math.Cos(2*math.Pi*float64(h)*t/40))
			col++
		}
		tk := 1.0
		for k := 0; k <= polyDeg; k++ {
			a.Set(i, col, tk)
			col++
			tk *= t
		}
		for j := 0; j < columns; j++ {
			b[i] += a.At(i, j) * coef[j]
		}
		b[i] += noiseLevel * rng.NormFloat64()
	}

	fmt.Printf("fitting %d samples against %d model columns (column norms span 6+ decades)\n\n", samples, columns)

	// ‖Aᵀb‖ normalizes the optimality metric for display.
	gradScale := 0.0
	for j := 0; j < columns; j++ {
		var s float64
		for i := 0; i < samples; i++ {
			s += a.At(i, j) * b[i]
		}
		gradScale += s * s
	}
	gradScale = math.Sqrt(gradScale)

	// With the default configuration (column scaling ON).
	sol, err := tcqr.SolveLeastSquares(a, b, tcqr.SolveOptions{
		QR:  tcqr.Config{Cutoff: cutoff},
		Tol: 1e-9, // the raw Vandermonde columns put the f64 floor above the default tolerance
	})
	if err != nil {
		log.Fatal(err)
	}
	report("with column scaling (default)", sol, a, coef, gradScale)

	// With scaling disabled: t⁴ values up to 2.56e6 overflow binary16
	// (max 65504). Under the default HazardFail policy the overflow is
	// detected and surfaces as a typed error instead of a destroyed fit.
	fmt.Println("without column scaling (§3.5 ablation)")
	_, err = tcqr.SolveLeastSquares(a, b, tcqr.SolveOptions{
		QR:  tcqr.Config{DisableColumnScaling: true, Cutoff: cutoff},
		Tol: 1e-9,
	})
	fmt.Printf("  typed failure              : %v\n\n", err)

	// The same broken configuration under HazardFallback: the library
	// retries with scaling re-enabled and reports what it did.
	solRec, err := tcqr.SolveLeastSquares(a, b, tcqr.SolveOptions{
		QR:       tcqr.Config{DisableColumnScaling: true, Cutoff: cutoff},
		Tol:      1e-9,
		OnHazard: tcqr.HazardFallback,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("without scaling + HazardFallback (recovered)", solRec, a, coef, gradScale)
	for _, h := range solRec.Hazards {
		fmt.Printf("  hazard: %s\n", h)
	}
}

// report prints the fit quality. The raw polynomial basis on [0, 100] is
// numerically nearly degenerate, so individual coefficients are not well
// determined by the data; the recovered *signal* A·x is — that is the
// quantity reported (RMS prediction error against the noiseless truth).
func report(label string, sol *tcqr.LeastSquaresResult, a *tcqr.Matrix, truth []float64, gradScale float64) {
	fmt.Printf("%s\n", label)
	fmt.Printf("  fp16 overflow events       : %d\n", sol.Factorization.EngineStats.Overflows)
	fmt.Printf("  CGLS iterations            : %d (converged: %v)\n", sol.Iterations, sol.Converged)
	fmt.Printf("  rel. optimality ‖Aᵀr‖/‖Aᵀb‖: %.2e\n", sol.Optimality/gradScale)

	var sum float64
	bad := false
	for i := 0; i < a.Rows && !bad; i++ {
		var pred, want float64
		for j := 0; j < a.Cols; j++ {
			pred += a.At(i, j) * sol.X[j]
			want += a.At(i, j) * truth[j]
		}
		d := pred - want
		if math.IsNaN(d) || math.IsInf(d, 0) {
			bad = true
			break
		}
		sum += d * d
	}
	if bad || math.IsNaN(sol.Optimality) {
		fmt.Printf("  RMS prediction error       : NaN/Inf — the fit was destroyed by fp16 overflow\n\n")
		return
	}
	fmt.Printf("  RMS prediction error       : %.2e (noise level %.0e)\n\n", math.Sqrt(sum/float64(a.Rows)), noiseLevel)
}
