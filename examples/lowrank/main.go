// Low rank approximation: compress a tall-skinny data matrix with the
// truncated QR-SVD of Section 3.4 of the paper. The data is a synthetic
// sensor panel — a few smooth spatial modes modulated over many time
// steps, plus noise — so its spectrum decays fast and aggressive
// truncation loses almost nothing.
//
// Per the paper (Table 4), the half-precision QR stage does not degrade
// the approximation: the truncation error dominates the fp16 roundoff, so
// the neural engine's speed comes for free here.
//
// Run with: go run ./examples/lowrank
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tcqr"
)

const (
	timeSteps = 8192 // rows: one per time step
	sensors   = 128  // columns: one per sensor
	modes     = 5    // true latent modes
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Data = Σ_k amplitude_k(t) · pattern_k(sensor) + noise.
	a := tcqr.NewMatrix32(timeSteps, sensors)
	for k := 0; k < modes; k++ {
		freq := float64(k + 1)
		scale := math.Pow(0.4, float64(k)) // decaying mode energies
		phase := rng.Float64() * 2 * math.Pi
		for i := 0; i < timeSteps; i++ {
			amp := scale * math.Sin(2*math.Pi*freq*float64(i)/float64(timeSteps)+phase)
			for j := 0; j < sensors; j++ {
				pattern := math.Cos(math.Pi * freq * float64(j) / float64(sensors))
				a.Set(i, j, a.At(i, j)+float32(amp*pattern))
			}
		}
	}
	for i := range a.Data {
		a.Data[i] += float32(1e-3 * rng.NormFloat64())
	}

	fmt.Printf("compressing a %dx%d sensor panel (%d true modes + noise)\n\n", timeSteps, sensors, modes)
	fmt.Printf("%-6s  %-12s  %-12s\n", "rank", "rel. error", "compression")
	for _, rank := range []int{1, 2, 4, 8, 16} {
		lr, err := tcqr.LowRank(a, rank, tcqr.Config{})
		if err != nil {
			log.Fatal(err)
		}
		original := timeSteps * sensors
		compressed := rank * (timeSteps + sensors + 1)
		fmt.Printf("%-6d  %-12.3e  %5.1fx\n", rank, lr.Error(a), float64(original)/float64(compressed))
	}

	// The spectrum itself shows the five modes standing above the noise
	// floor.
	s, err := tcqr.SingularValues(a, tcqr.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nleading singular values: ")
	for i := 0; i < 8; i++ {
		fmt.Printf("%.3g ", s[i])
	}
	fmt.Println("...")
}
