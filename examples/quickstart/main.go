// Quickstart: factor a tall matrix on the simulated neural engine, check
// the accuracy metrics from the paper, and solve a least squares problem
// to double precision.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tcqr"
)

func main() {
	const m, n = 1024, 256
	rng := rand.New(rand.NewSource(1))

	// A random tall matrix in float64 (user precision)...
	a := tcqr.NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	// ...narrowed to float32 at the device boundary.
	a32 := tcqr.ToFloat32(a)

	// QR on the neural engine: RGSQRF with the CAQR panel, column scaling
	// on. The zero Config is the paper's recommended setup.
	f, err := tcqr.Factorize(a32, tcqr.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RGSQRF of a %dx%d matrix on the simulated TensorCore\n", m, n)
	fmt.Printf("  backward error ‖A-QR‖/‖A‖ : %.2e (half-precision level)\n", f.BackwardError(a32))
	fmt.Printf("  orthogonality  ‖I-QᵀQ‖    : %.2e\n", f.OrthogonalityError())
	fmt.Printf("  engine work               : %d GEMM calls, %.1f Gflop\n",
		f.EngineStats.GemmCalls, float64(f.EngineStats.Flops)/1e9)

	// Least squares: b = A·x* + noise; recover x* to double precision even
	// though the factorization is half precision, via CGLS refinement
	// (Algorithm 3 of the paper).
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			b[i] += a.At(i, j) * xTrue[j]
		}
	}
	for i := range b {
		b[i] += 0.01 * rng.NormFloat64() // incompatible component
	}

	sol, err := tcqr.SolveLeastSquares(a, b, tcqr.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for i := range xTrue {
		if d := abs(sol.X[i] - xTrue[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nleast squares min ‖Ax-b‖ with CGLS refinement\n")
	fmt.Printf("  iterations                : %d (converged: %v)\n", sol.Iterations, sol.Converged)
	fmt.Printf("  optimality ‖Aᵀ(Ax-b)‖     : %.2e (double-precision level)\n", sol.Optimality)
	fmt.Printf("  max |x - x*|              : %.2e (limited by the added noise)\n", worst)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
