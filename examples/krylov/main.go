// Block orthogonalization of a Krylov basis: the Section 3.3 application
// of the paper. The columns of K = [v, Av, A²v, …] align exponentially
// fast, so K is catastrophically ill-conditioned — exactly the regime
// where a single Gram-Schmidt pass (even in full precision) loses
// orthogonality, and where the paper's "twice is enough"
// re-orthogonalization earns its keep.
//
// The orthonormal basis is then used for a Rayleigh-Ritz projection:
// eigenvalue estimates of A from the subspace. Garbage orthogonality means
// garbage Ritz values; the re-orthogonalized basis recovers the true
// dominant eigenvalues.
//
// Run with: go run ./examples/krylov
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tcqr"
)

const (
	dim   = 2048 // operator size
	depth = 24   // Krylov subspace dimension
)

func main() {
	rng := rand.New(rand.NewSource(4))

	// A simple symmetric operator with a known spectrum: geometric decay
	// λ_i = 2·0.9^i, so the dominant eigenvalues are well separated and a
	// modest Krylov subspace resolves the top few.
	eig := make([]float64, dim)
	for i := range eig {
		eig[i] = 2 * math.Pow(0.9, float64(i))
	}
	apply := func(dst, src []float64) {
		for i := range dst {
			dst[i] = eig[i] * src[i]
		}
	}

	// Krylov basis K(:, j) = A^j v.
	k := tcqr.NewMatrix(dim, depth)
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	for j := 0; j < depth; j++ {
		copy(k.Col(j), v)
		next := make([]float64, dim)
		apply(next, v)
		v = next
	}
	// Normalize columns so the device sees O(1) data (the exponential
	// growth of ‖A^j v‖ is a scaling, not a direction, issue).
	for j := 0; j < depth; j++ {
		col := k.Col(j)
		var n float64
		for _, x := range col {
			n += x * x
		}
		n = math.Sqrt(n)
		for i := range col {
			col[i] /= n
		}
	}
	k32 := tcqr.ToFloat32(k)

	// One pass vs twice-is-enough.
	single, err := tcqr.Factorize(k32, tcqr.Config{})
	if err != nil {
		log.Fatal(err)
	}
	reortho, err := tcqr.Factorize(k32, tcqr.Config{ReOrthogonalize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orthogonality ‖I−QᵀQ‖ of a %d-dim Krylov basis (dim %d operator):\n", depth, dim)
	fmt.Printf("  single RGSQRF pass       : %.2e\n", single.OrthogonalityError())
	fmt.Printf("  with re-orthogonalization: %.2e  (\"twice is enough\")\n\n", reortho.OrthogonalityError())

	// Rayleigh-Ritz with the clean basis: the projected operator's
	// eigenvalues approximate the dominant spectrum.
	ritz, err := tcqr.RayleighRitz(reortho.Q, apply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dominant eigenvalue estimates from the re-orthogonalized basis:")
	fmt.Printf("  true : %.4f %.4f %.4f %.4f\n", eig[0], eig[1], eig[2], eig[3])
	fmt.Printf("  Ritz : %.4f %.4f %.4f %.4f\n", ritz[0], ritz[1], ritz[2], ritz[3])

	// The same projection through the single-pass (non-orthogonal) basis
	// drifts: Qᵀ·A·Q no longer represents the operator on the subspace.
	ritzBad, err := tcqr.RayleighRitz(single.Q, apply)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  (single-pass basis gives %.4f %.4f %.4f %.4f — off without re-orthogonalization)\n",
		ritzBad[0], ritzBad[1], ritzBad[2], ritzBad[3])
}
