package tcqr

import (
	"fmt"
	"math/rand"

	"tcqr/internal/blas"
	"tcqr/internal/dense"
	"tcqr/internal/svd"
)

// RandomizedLowRank computes a rank-r approximation of a by the randomized
// range finder (Halko-Martinsson-Tropp), with the two large GEMMs — the
// sketch Y = A·Ω and the projection B = Qᵀ·A — running on the simulated
// neural engine. It extends LowRank beyond tall-skinny matrices: a may be
// any shape with min(m, n) > rank + oversample.
//
// The pipeline is the paper's conclusion in miniature ("more ways to use
// neural engines beside the matrix multiplication interface"): the engine
// does the O(mn·k) work, and the paper's own orthogonalization safeguard
// (RGSQRF with re-orthogonalization) makes the sketched basis numerically
// orthonormal.
//
// powerIters > 0 applies subspace iterations (Y ← A·Aᵀ·Y) to sharpen the
// spectrum for slowly decaying singular values; each iteration adds two
// engine GEMMs. rng supplies the Gaussian test matrix (deterministic for a
// seeded source).
//
// Unlike Factorize, the raw sketch GEMM has no column-scaling safeguard:
// inputs whose elements exceed the binary16 range (±65504) must be scaled
// by the caller before sketching, or run with DisableTensorCore.
func RandomizedLowRank(a *Matrix32, rank, oversample, powerIters int, rng *rand.Rand, cfg Config) (*LowRankApprox, error) {
	m, n := a.Rows, a.Cols
	if rank < 1 {
		return nil, fmt.Errorf("tcqr: rank %d < 1", rank)
	}
	if oversample < 0 {
		oversample = 8
	}
	k := rank + oversample
	if k > m || k > n {
		return nil, fmt.Errorf("tcqr: rank+oversample = %d exceeds min dimension of %dx%d", k, m, n)
	}

	engine, _ := cfg.engineFor(false)

	// Sketch: Y = A·Ω with a Gaussian Ω (n×k).
	omega := dense.New[float32](n, k)
	for i := range omega.Data {
		omega.Data[i] = float32(rng.NormFloat64())
	}
	y := dense.New[float32](m, k)
	engine.Gemm(blas.NoTrans, blas.NoTrans, 1, a, omega, 0, y)

	orthonormalize := func(x *Matrix32) (*Matrix32, error) {
		c := cfg
		c.ReOrthogonalize = true
		f, err := Factorize(x, c)
		if err != nil {
			return nil, err
		}
		return f.Q, nil
	}

	// Optional subspace iterations with re-orthogonalization between
	// applications (the numerically stable variant).
	for it := 0; it < powerIters; it++ {
		q, err := orthonormalize(y)
		if err != nil {
			return nil, err
		}
		z := dense.New[float32](n, k)
		engine.Gemm(blas.Trans, blas.NoTrans, 1, a, q, 0, z)
		qz, err := orthonormalize(z)
		if err != nil {
			return nil, err
		}
		engine.Gemm(blas.NoTrans, blas.NoTrans, 1, a, qz, 0, y)
	}

	q, err := orthonormalize(y)
	if err != nil {
		return nil, err
	}

	// Project: B = Qᵀ·A (k×n), then a small exact SVD of Bᵀ (n×k, n >= k).
	bt := dense.New[float32](n, k)
	engine.Gemm(blas.Trans, blas.NoTrans, 1, a, q, 0, bt) // Bᵀ = Aᵀ·Q
	btSVD, err := svd.Jacobi(bt, 0)
	if err != nil {
		return nil, err
	}
	// Bᵀ = Ũ·Σ·Ṽᵀ ⇒ B = Ṽ·Σ·Ũᵀ ⇒ A ≈ (Q·Ṽ)·Σ·Ũᵀ.
	u := dense.New[float32](m, k)
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, q, btSVD.V, 0, u)

	full := &svd.TallSVD{U: u, S: btSVD.S, V: btSVD.U}
	return &LowRankApprox{
		U:    u.View(0, 0, m, rank).Clone(),
		S:    append([]float32(nil), btSVD.S[:rank]...),
		V:    btSVD.U.View(0, 0, n, rank).Clone(),
		Rank: rank,
		full: full,
	}, nil
}

// ConditionNumber estimates κ₂(A) = σ₁/σ_n of a tall matrix through the
// QR-SVD pipeline. The estimate inherits the half-precision engine's
// accuracy (a few times 1e-3 relative), which is ample for deciding
// whether refinement or re-orthogonalization safeguards are needed.
func ConditionNumber(a *Matrix32, cfg Config) (float64, error) {
	s, err := SingularValues(a, cfg)
	if err != nil {
		return 0, err
	}
	n := len(s)
	if n == 0 {
		return 0, fmt.Errorf("tcqr: empty matrix")
	}
	if s[n-1] <= 0 {
		return 0, fmt.Errorf("tcqr: matrix is numerically rank deficient (σ_min = %g)", s[n-1])
	}
	return float64(s[0]) / float64(s[n-1]), nil
}
