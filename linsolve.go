package tcqr

import (
	"tcqr/internal/dense"
	"tcqr/internal/lu"
	"tcqr/internal/tcsim"
)

// LinearSolveResult is the outcome of SolveLinearSystem.
type LinearSolveResult struct {
	X          []float64
	Iterations int
	Converged  bool
	// ResidualNorms[k] is ‖b − A·x_k‖ after k refinement steps.
	ResidualNorms []float64
	// GrowthFactor is max|U|/max|A| of the elimination — the quantity that
	// makes LU, unlike column-scaled QR, able to overflow a
	// limited-range format mid-factorization (§3.5 of the paper).
	GrowthFactor float64
}

// SolveLinearSystem solves the square system A·x = b with the
// mixed-precision pipeline of the paper's closest related work (Haidar et
// al.): LU with partial pivoting whose trailing updates run on the
// simulated neural engine, followed by float64 iterative refinement. It is
// included as the LU counterpart of SolveLeastSquares so the QR-vs-LU
// co-design discussion in the paper's conclusion can be explored directly.
//
// Note the caveat this repository demonstrates in internal/lu's tests: LU's
// elimination growth is unbounded, so unlike the column-scaled QR there
// exist well-scaled inputs (growth factor ≳ 65504/max|A|) on which the
// half-precision engine overflows; SolveLinearSystem returns the
// factorization error in that case.
func SolveLinearSystem(a *Matrix, b []float64, cfg Config) (*LinearSolveResult, error) {
	a32 := dense.ToF32(a)
	var engine tcsim.Engine
	switch {
	case cfg.DisableTensorCore:
		engine = &tcsim.FP32{}
	case cfg.UseBFloat16:
		engine = &tcsim.BFloat16{TrackSpecials: cfg.TrackEngineStats}
	default:
		engine = &tcsim.TensorCore{TrackSpecials: cfg.TrackEngineStats}
	}
	f, err := lu.Factor(a32, lu.Options{Engine: engine})
	if err != nil {
		return nil, err
	}
	res := lu.SolveRefined(f, a, b, 0, 0)
	return &LinearSolveResult{
		X:             res.X,
		Iterations:    res.Iterations,
		Converged:     res.Converged,
		ResidualNorms: res.ResidualNorms,
		GrowthFactor:  f.GrowthFactor(a32),
	}, nil
}
