package tcqr

import (
	"fmt"

	"tcqr/internal/dense"
	"tcqr/internal/hazard"
	"tcqr/internal/lu"
)

// LinearSolveResult is the outcome of SolveLinearSystem.
type LinearSolveResult struct {
	X          []float64
	Iterations int
	Converged  bool
	// ResidualNorms[k] is ‖b − A·x_k‖ after k refinement steps.
	ResidualNorms []float64
	// GrowthFactor is max|U|/max|A| of the elimination — the quantity that
	// makes LU, unlike column-scaled QR, able to overflow a
	// limited-range format mid-factorization (§3.5 of the paper).
	GrowthFactor float64
	// Hazards lists detected LU hazards and, under HazardFallback, the
	// engine retries taken (bfloat16, then FP32).
	Hazards []Hazard
}

// SolveLinearSystem solves the square system A·x = b with the
// mixed-precision pipeline of the paper's closest related work (Haidar et
// al.): LU with partial pivoting whose trailing updates run on the
// simulated neural engine, followed by float64 iterative refinement. It is
// included as the LU counterpart of SolveLeastSquares so the QR-vs-LU
// co-design discussion in the paper's conclusion can be explored directly.
//
// Note the caveat this repository demonstrates in internal/lu's tests: LU's
// elimination growth is unbounded, so unlike the column-scaled QR there
// exist well-scaled inputs (growth factor ≳ 65504/max|A|) on which the
// half-precision engine overflows. Under the default HazardFail policy that
// surfaces as a typed error (wrapping ErrOverflow when the engine counted
// overflow events, ErrBreakdown otherwise); under HazardFallback the solve
// retries with the bfloat16 engine — whose exponent range matches float32,
// so LU growth cannot overflow it — and finally plain FP32.
func SolveLinearSystem(a *Matrix, b []float64, cfg Config) (*LinearSolveResult, error) {
	if err := hazard.CheckMatrix("A", a); err != nil {
		return nil, fmt.Errorf("tcqr: %w", err)
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("tcqr: matrix is %dx%d; SolveLinearSystem needs square: %w", a.Rows, a.Cols, ErrShape)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("tcqr: rhs length %d, want %d: %w", len(b), a.Rows, ErrShape)
	}
	if err := hazard.CheckVec("b", b); err != nil {
		return nil, fmt.Errorf("tcqr: %w", err)
	}
	a32 := dense.ToF32(a)
	rep := &hazard.Report{}
	f, err := luFactor(a32, cfg)
	if err != nil && cfg.OnHazard == HazardFallback {
		// LU has no column scaling, so build the ladder without that rung.
		lcfg := cfg
		lcfg.DisableColumnScaling = false
		for _, r := range engineLadder(lcfg, err) {
			rep.Record(hazard.Event{
				Kind:   classify(err),
				Stage:  "lu",
				Detail: err.Error(),
				Action: r.action,
			})
			f, err = luFactor(a32, r.cfg)
			if err == nil {
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	res := lu.SolveRefined(f, a, b, 0, 0)
	return &LinearSolveResult{
		X:             res.X,
		Iterations:    res.Iterations,
		Converged:     res.Converged,
		ResidualNorms: res.ResidualNorms,
		GrowthFactor:  f.GrowthFactor(a32),
		Hazards:       rep.Events(),
	}, nil
}

// luFactor runs one LU factorization with the engine cfg selects, verifying
// the factors are finite and classifying failures with the typed hazard
// errors.
func luFactor(a32 *Matrix32, cfg Config) (*lu.Factorization, error) {
	engine, st := cfg.engineFor(true)
	f, err := lu.Factor(a32, lu.Options{Engine: engine})
	var overflows int64
	if st != nil {
		overflows = st.Stats().Overflows
	}
	if err != nil {
		if overflows > 0 {
			return nil, fmt.Errorf("tcqr: after %d fp16 overflow events: %w: %w", overflows, ErrOverflow, err)
		}
		return nil, fmt.Errorf("tcqr: %w: %w", ErrBreakdown, err)
	}
	if !hazard.MatrixFinite(f.LU) {
		if overflows > 0 {
			return nil, fmt.Errorf("tcqr: LU factors are non-finite after %d fp16 overflow events: %w: %w",
				overflows, ErrOverflow, ErrNonFinite)
		}
		return nil, fmt.Errorf("tcqr: LU factors are non-finite: %w", ErrNonFinite)
	}
	return f, nil
}
